package fingerprint

import (
	"fmt"
	"testing"
)

// leafTables builds two disjoint-ish leaf tables of size entries each.
func benchTables(entries, f, k int) (*Table, *Table) {
	var fpsA, fpsB []FP
	for i := 0; i < entries; i++ {
		fpsA = append(fpsA, fpOf(i))
		fpsB = append(fpsB, fpOf(i+entries/2)) // 50% overlap
	}
	return Local(fpsA, 0, f, k), Local(fpsB, 1, f, k)
}

// BenchmarkHMerge measures the paper's HMERGE step: merging two
// fingerprint tables under the top-F bound with designated-rank load
// balancing — the inner loop of the collective reduction.
func BenchmarkHMerge(b *testing.B) {
	for _, entries := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			_, t2 := benchTables(entries, entries, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				t1, _ := benchTables(entries, entries, 3)
				b.StartTimer()
				t1.Merge(t2)
			}
		})
	}
}

// BenchmarkTableMarshal measures the serialization cost paid on every
// reduction tree edge.
func BenchmarkTableMarshal(b *testing.B) {
	t1, t2 := benchTables(1<<13, 1<<13, 3)
	t1.Merge(t2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := t1.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(blob)))
	}
}

// BenchmarkTableUnmarshal measures the matching decode cost.
func BenchmarkTableUnmarshal(b *testing.B) {
	t1, t2 := benchTables(1<<13, 1<<13, 3)
	t1.Merge(t2)
	blob, err := t1.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var back Table
		if err := back.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalLeaf measures building the reduction's leaf table from a
// rank's fingerprints.
func BenchmarkLocalLeaf(b *testing.B) {
	fps := make([]FP, 1<<13)
	for i := range fps {
		fps[i] = fpOf(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(fps, 0, 1<<13, 3)
	}
}

// BenchmarkFingerprint measures SHA-1 over one 4 KiB page, the per-chunk
// hashing cost every approach except no-dedup pays.
func BenchmarkFingerprint(b *testing.B) {
	page := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Of(page)
	}
}
