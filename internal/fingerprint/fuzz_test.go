package fingerprint

import (
	"encoding/binary"
	"testing"
)

// FuzzTableUnmarshal drives the table decoder with arbitrary bytes: the
// peer-controlled count prefix must never panic or size an unbounded
// allocation, and any input that decodes must survive a re-encode cycle.
func FuzzTableUnmarshal(f *testing.F) {
	valid, err := buildShuffled(1).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:8])
	f.Add(append(valid, 0xFF))
	// A header claiming far more entries than the payload holds: the
	// bound check the boundedmake analyzer demanded.
	hostile := append([]byte(nil), valid[:12]...)
	binary.BigEndian.PutUint32(hostile[8:], 0x0FFFFFFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		var tb Table
		if err := tb.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := tb.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of decoded table failed: %v", err)
		}
		var tb2 Table
		if err := tb2.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-decode of re-encoded table failed: %v", err)
		}
	})
}
