package fingerprint

import (
	"encoding/binary"
	"testing"
)

// FuzzBatchOf splits arbitrary bytes into spans at input-derived
// boundaries and checks that batch fingerprinting is bit-identical to
// per-span Of calls — the digest-reuse optimization must never leak
// state between spans.
func FuzzBatchOf(f *testing.F) {
	f.Add([]byte("collective dedup"), uint8(3))
	f.Add(make([]byte, 1024), uint8(0))
	f.Add([]byte{}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		var spans [][]byte
		stride := int(step) + 1
		for off := 0; off < len(data); {
			end := off + stride + off%3 // uneven spans, some adjacent
			if end > len(data) {
				end = len(data)
			}
			spans = append(spans, data[off:end])
			off = end
		}
		spans = append(spans, nil, data) // edge spans: nil and the whole buffer
		dst := make([]FP, len(spans))
		BatchOf(dst, spans...)
		for i, s := range spans {
			if want := Of(s); dst[i] != want {
				t.Fatalf("span %d (%d bytes): batch digest differs from Of", i, len(s))
			}
		}
	})
}

// FuzzTableUnmarshal drives the table decoder with arbitrary bytes: the
// peer-controlled count prefix must never panic or size an unbounded
// allocation, and any input that decodes must survive a re-encode cycle.
func FuzzTableUnmarshal(f *testing.F) {
	valid, err := buildShuffled(1).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:8])
	f.Add(append(valid, 0xFF))
	// A header claiming far more entries than the payload holds: the
	// bound check the boundedmake analyzer demanded.
	hostile := append([]byte(nil), valid[:12]...)
	binary.BigEndian.PutUint32(hostile[8:], 0x0FFFFFFF)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		var tb Table
		if err := tb.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := tb.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of decoded table failed: %v", err)
		}
		var tb2 Table
		if err := tb2.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-decode of re-encoded table failed: %v", err)
		}
	})
}
