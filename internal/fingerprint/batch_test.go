package fingerprint

import (
	"math/rand"
	"testing"
)

// TestBatchOfMatchesOf pins the batch contract: BatchOf must be
// bit-identical to per-span Of calls, for spans of every shape —
// empty, nil, tiny, block-sized and odd-tailed — in shuffled order.
func TestBatchOfMatchesOf(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	spans := [][]byte{nil, {}, []byte("x")}
	for i := 0; i < 61; i++ {
		s := make([]byte, rng.Intn(5000))
		rng.Read(s)
		spans = append(spans, s)
	}
	rng.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })

	dst := make([]FP, len(spans))
	BatchOf(dst, spans...)
	for i, s := range spans {
		if want := Of(s); dst[i] != want {
			t.Fatalf("span %d (%d bytes): batch %s, want %s", i, len(s), dst[i].Short(), want.Short())
		}
	}

	// A second batch into the same dst must overwrite cleanly.
	BatchOf(dst[:1], []byte("other"))
	if dst[0] != Of([]byte("other")) {
		t.Fatal("reused dst entry not overwritten")
	}
	// Oversized dst is fine; the tail stays untouched.
	tail := dst[len(dst)-1]
	BatchOf(dst, spans[0])
	if dst[len(dst)-1] != tail {
		t.Fatal("BatchOf wrote past its spans")
	}
}

func TestBatchOfShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BatchOf accepted a dst shorter than spans")
		}
	}()
	BatchOf(make([]FP, 1), []byte("a"), []byte("b"))
}

func TestBatchOfEmpty(t *testing.T) {
	BatchOf(nil) // zero spans need zero dst
}
