package fingerprint

import (
	"bytes"
	"math/rand"
	"testing"
)

// detFP builds a distinct deterministic fingerprint for index i.
func detFP(i int) FP {
	var fp FP
	for b := range fp {
		fp[b] = byte(i >> (8 * (b % 4)))
		fp[b] ^= byte(31 * b)
	}
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	return fp
}

// buildShuffled runs the same logical reduction with every rank's chunk
// stream fed in a seed-dependent order. The table is map-backed, so this
// varies internal layout and insertion order while the logical content —
// and therefore the wire encoding every rank must agree on — stays fixed.
func buildShuffled(seed int64) *Table {
	r := rand.New(rand.NewSource(seed))
	const ranks = 8
	tables := make([]*Table, ranks)
	for rank := 0; rank < ranks; rank++ {
		fps := make([]FP, 0, 64)
		for i := 0; i < 64; i++ {
			fps = append(fps, detFP(i%48+rank*3))
		}
		r.Shuffle(len(fps), func(i, j int) { fps[i], fps[j] = fps[j], fps[i] })
		tables[rank] = Local(fps, int32(rank), 40, 3)
	}
	root := tables[0]
	for rank := 1; rank < ranks; rank++ {
		root.Merge(tables[rank])
	}
	return root
}

// TestTableEncodingByteIdentical is the regression test behind the
// determinism analyzer: 100 independently built reductions of the same
// inputs must marshal to byte-identical encodings, or ranks would
// disagree on the global view after Bcast.
func TestTableEncodingByteIdentical(t *testing.T) {
	first := buildShuffled(1)
	if err := first.Validate(); err != nil {
		t.Fatal(err)
	}
	want, err := first.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for run := 2; run <= 101; run++ {
		got, err := buildShuffled(int64(run)).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: encoding differs from run 1 (%d vs %d bytes)", run, len(got), len(want))
		}
	}
}
