package fingerprint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// fpOf builds a deterministic fingerprint from an integer id.
func fpOf(id int) FP {
	return Of([]byte(fmt.Sprintf("chunk-%d", id)))
}

func TestLocalCollapsesDuplicates(t *testing.T) {
	fps := []FP{fpOf(1), fpOf(2), fpOf(1), fpOf(3), fpOf(2)}
	tbl := Local(fps, 7, 0, 3)
	if tbl.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tbl.Len())
	}
	for _, e := range tbl.Entries() {
		if e.Freq != 1 {
			t.Errorf("entry %s freq = %d, want 1", e.FP.Short(), e.Freq)
		}
		if len(e.Ranks) != 1 || e.Ranks[0] != 7 {
			t.Errorf("entry %s ranks = %v, want [7]", e.FP.Short(), e.Ranks)
		}
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalRespectsF(t *testing.T) {
	fps := make([]FP, 100)
	for i := range fps {
		fps[i] = fpOf(i)
	}
	tbl := Local(fps, 0, 10, 2)
	if tbl.Len() != 10 {
		t.Fatalf("Len() = %d, want 10 (F bound)", tbl.Len())
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAddsFrequencies(t *testing.T) {
	a := Local([]FP{fpOf(1), fpOf(2)}, 0, 0, 3)
	b := Local([]FP{fpOf(1), fpOf(3)}, 1, 0, 3)
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", a.Len())
	}
	e := a.Lookup(fpOf(1))
	if e == nil || e.Freq != 2 {
		t.Fatalf("shared fingerprint freq = %+v, want 2", e)
	}
	if len(e.Ranks) != 2 {
		t.Fatalf("shared fingerprint ranks = %v, want both", e.Ranks)
	}
	if e2 := a.Lookup(fpOf(3)); e2 == nil || e2.Freq != 1 || e2.Ranks[0] != 1 {
		t.Fatalf("fp3 entry = %+v", e2)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTruncatesRanksAtK(t *testing.T) {
	k := 3
	acc := Local([]FP{fpOf(1)}, 0, 0, k)
	for r := int32(1); r < 6; r++ {
		acc.Merge(Local([]FP{fpOf(1)}, r, 0, k))
	}
	e := acc.Lookup(fpOf(1))
	if e == nil {
		t.Fatal("entry lost")
	}
	if e.Freq != 6 {
		t.Errorf("freq = %d, want 6", e.Freq)
	}
	if len(e.Ranks) != k {
		t.Errorf("designated ranks = %v, want %d of them", e.Ranks, k)
	}
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeLoadBalancesDesignation(t *testing.T) {
	// Rank 0 holds fingerprints 1..10; ranks 1..4 each hold only
	// fingerprint 1. With K=2, rank 0 is heavily loaded, so the second
	// designated slot of fingerprint 1 should go to a lightly loaded
	// rank, and rank 0 itself should be dropped from fingerprint 1 when
	// over-designated peers exist.
	k := 2
	var fps0 []FP
	for i := 1; i <= 10; i++ {
		fps0 = append(fps0, fpOf(i))
	}
	acc := Local(fps0, 0, 0, k)
	for r := int32(1); r <= 4; r++ {
		acc.Merge(Local([]FP{fpOf(1)}, r, 0, k))
	}
	e := acc.Lookup(fpOf(1))
	if e == nil || len(e.Ranks) != k {
		t.Fatalf("entry = %+v, want %d ranks", e, k)
	}
	for _, r := range e.Ranks {
		if r == 0 {
			t.Errorf("rank 0 (most loaded) still designated for fp1: %v", e.Ranks)
		}
	}
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimKeepsMostFrequent(t *testing.T) {
	f := 2
	k := 2
	// fp1 on 3 ranks, fp2 on 2 ranks, fp3 on 1 rank; F=2 keeps fp1, fp2.
	acc := Local([]FP{fpOf(1), fpOf(2), fpOf(3)}, 0, f, k)
	acc.Merge(Local([]FP{fpOf(1), fpOf(2)}, 1, f, k))
	acc.Merge(Local([]FP{fpOf(1)}, 2, f, k))
	if acc.Len() != f {
		t.Fatalf("Len() = %d, want %d", acc.Len(), f)
	}
	if acc.Lookup(fpOf(1)) == nil {
		t.Error("most frequent fingerprint evicted")
	}
	if acc.Lookup(fpOf(2)) == nil {
		t.Error("second most frequent fingerprint evicted")
	}
	if acc.Lookup(fpOf(3)) != nil {
		t.Error("least frequent fingerprint retained")
	}
	if err := acc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// reduceAll simulates the binomial reduction over nRanks tables.
func reduceAll(tables []*Table) *Table {
	n := len(tables)
	for mask := 1; mask < n; mask *= 2 {
		for r := 0; r+mask < n; r += 2 * mask {
			tables[r].Merge(tables[r+mask])
		}
	}
	return tables[0]
}

func TestReductionFrequencyExact(t *testing.T) {
	// With unbounded F, reduced frequencies must equal the number of
	// ranks holding each fingerprint.
	const nRanks = 16
	rng := rand.New(rand.NewSource(42))
	holders := make(map[FP]int)
	tables := make([]*Table, nRanks)
	for r := range tables {
		var fps []FP
		for id := 0; id < 30; id++ {
			if rng.Intn(2) == 0 {
				fp := fpOf(id)
				fps = append(fps, fp)
				holders[fp]++
			}
		}
		tables[r] = Local(fps, int32(r), 0, 3)
	}
	g := reduceAll(tables)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for fp, want := range holders {
		e := g.Lookup(fp)
		if e == nil {
			t.Fatalf("fingerprint %s lost in reduction", fp.Short())
		}
		if int(e.Freq) != want {
			t.Errorf("fingerprint %s freq = %d, want %d", fp.Short(), e.Freq, want)
		}
		if len(e.Ranks) > 3 {
			t.Errorf("fingerprint %s has %d > 3 designated ranks", fp.Short(), len(e.Ranks))
		}
		want := want
		if want > 3 {
			want = 3
		}
		if len(e.Ranks) != want {
			t.Errorf("fingerprint %s designated %d ranks, want min(holders,K)=%d", fp.Short(), len(e.Ranks), want)
		}
	}
}

func TestReductionDesignatesOnlyHolders(t *testing.T) {
	// A designated rank must actually hold the fingerprint: designation
	// originates from leaf tables and never invents ranks.
	const nRanks = 12
	rng := rand.New(rand.NewSource(7))
	holds := make(map[FP]map[int32]bool)
	tables := make([]*Table, nRanks)
	for r := range tables {
		var fps []FP
		for id := 0; id < 20; id++ {
			if rng.Intn(3) == 0 {
				fp := fpOf(id)
				fps = append(fps, fp)
				if holds[fp] == nil {
					holds[fp] = make(map[int32]bool)
				}
				holds[fp][int32(r)] = true
			}
		}
		tables[r] = Local(fps, int32(r), 0, 2)
	}
	g := reduceAll(tables)
	for _, e := range g.Entries() {
		for _, r := range e.Ranks {
			if !holds[e.FP][r] {
				t.Errorf("fingerprint %s designated to rank %d which does not hold it", e.FP.Short(), r)
			}
		}
	}
}

func TestMergeDeterministic(t *testing.T) {
	mk := func() []*Table {
		tables := make([]*Table, 8)
		for r := range tables {
			var fps []FP
			for id := 0; id < 50; id++ {
				if (id+r)%3 == 0 {
					fps = append(fps, fpOf(id))
				}
			}
			tables[r] = Local(fps, int32(r), 8, 3)
		}
		return tables
	}
	a, err1 := reduceAll(mk()).MarshalBinary()
	b, err2 := reduceAll(mk()).MarshalBinary()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if string(a) != string(b) {
		t.Fatal("identical reductions produced different tables")
	}
}

func TestWireRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(16, 3)
		for id := 0; id < 24; id++ {
			var fps []FP
			fps = append(fps, fpOf(rng.Intn(40)))
			tbl.Merge(Local(fps, int32(rng.Intn(10)), 16, 3))
		}
		blob, err := tbl.MarshalBinary()
		if err != nil {
			return false
		}
		var back Table
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		blob2, err := back.MarshalBinary()
		if err != nil {
			return false
		}
		return string(blob) == string(blob2) && back.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	tbl := Local([]FP{fpOf(1), fpOf(2)}, 3, 0, 2)
	blob, err := tbl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"header":     blob[:8],
		"entry":      blob[:len(blob)-5],
		"trailing":   append(append([]byte{}, blob...), 0xFF),
		"dup-header": blob[:12],
	}
	for name, b := range cases {
		var back Table
		if err := back.UnmarshalBinary(b); err == nil && name != "dup-header" {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tbl := Local([]FP{fpOf(1)}, 0, 0, 2)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	tbl.load[0] = 99
	if err := tbl.Validate(); err == nil {
		t.Fatal("Validate missed a corrupted load count")
	}
}
