// Package fingerprint provides content fingerprints for fixed-size chunks
// and the frequency-merge machinery (HMERGE) at the heart of the collective
// deduplication scheme: a bounded table of the F most frequent fingerprints,
// each mapped to its global frequency and a load-balanced list of at most K
// designated ranks.
package fingerprint

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the byte length of a fingerprint (SHA-1 digest).
const Size = sha1.Size

// FP is a content fingerprint of a chunk. The paper uses SHA-1, a
// crypto-grade hash chosen to make collisions negligible in practice.
type FP [Size]byte

// Of computes the fingerprint of data.
func Of(data []byte) FP {
	return FP(sha1.Sum(data))
}

// String returns the hex form of the fingerprint.
func (f FP) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 8 hex digits, for logs and tests.
func (f FP) Short() string { return hex.EncodeToString(f[:4]) }

// Less orders fingerprints lexicographically. Used for deterministic
// iteration orders in the reduction.
func (f FP) Less(g FP) bool {
	for i := 0; i < Size; i++ {
		if f[i] != g[i] {
			return f[i] < g[i]
		}
	}
	return false
}

// Compare returns -1, 0 or +1 comparing f and g lexicographically.
func (f FP) Compare(g FP) int {
	for i := 0; i < Size; i++ {
		switch {
		case f[i] < g[i]:
			return -1
		case f[i] > g[i]:
			return 1
		}
	}
	return 0
}

// Marshal appends the wire form of f to dst and returns the result.
func (f FP) Marshal(dst []byte) []byte { return append(dst, f[:]...) }

// UnmarshalFP reads a fingerprint from src, returning it and the rest.
func UnmarshalFP(src []byte) (FP, []byte, error) {
	var f FP
	if len(src) < Size {
		return f, nil, fmt.Errorf("fingerprint: short buffer: %d bytes", len(src))
	}
	copy(f[:], src[:Size])
	return f, src[Size:], nil
}

// Bucket maps a fingerprint to one of n buckets using its leading bytes.
// Used to shard fingerprint tables.
func (f FP) Bucket(n int) int {
	if n <= 1 {
		return 0
	}
	v := binary.BigEndian.Uint64(f[:8])
	return int(v % uint64(n))
}
