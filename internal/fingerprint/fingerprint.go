// Package fingerprint provides content fingerprints for fixed-size chunks
// and the frequency-merge machinery (HMERGE) at the heart of the collective
// deduplication scheme: a bounded table of the F most frequent fingerprints,
// each mapped to its global frequency and a load-balanced list of at most K
// designated ranks.
package fingerprint

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the byte length of a fingerprint (SHA-1 digest).
const Size = sha1.Size

// FP is a content fingerprint of a chunk. The paper uses SHA-1, a
// crypto-grade hash chosen to make collisions negligible in practice.
type FP [Size]byte

// Of computes the fingerprint of data.
func Of(data []byte) FP {
	return FP(sha1.Sum(data))
}

// BatchOf fingerprints every span into dst (dst[i] = Of(spans[i])),
// reusing one digest state across the whole batch and writing each
// result in place. Hashing a cache-resident batch this way — no
// per-chunk digest construction, no result copy through the stack —
// is what the chunk package's hash pool calls per shard, so the
// fingerprint phase gets faster at Parallelism=1, not just wider.
// Results are bit-identical to per-span Of calls (the batch tests and
// fuzzer pin this); dst must hold at least len(spans) entries.
func BatchOf(dst []FP, spans ...[]byte) {
	if len(dst) < len(spans) {
		panic(fmt.Sprintf("fingerprint: BatchOf dst %d shorter than spans %d", len(dst), len(spans)))
	}
	h := sha1.New()
	for i, s := range spans {
		h.Reset()
		h.Write(s)
		// Sum appends into dst[i]'s backing array (cap Size, len 0):
		// the digest lands directly in the destination fingerprint.
		h.Sum(dst[i][:0])
	}
}

// String returns the hex form of the fingerprint.
func (f FP) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 8 hex digits, for logs and tests.
func (f FP) Short() string { return hex.EncodeToString(f[:4]) }

// Less orders fingerprints lexicographically. Used for deterministic
// iteration orders in the reduction.
func (f FP) Less(g FP) bool {
	for i := 0; i < Size; i++ {
		if f[i] != g[i] {
			return f[i] < g[i]
		}
	}
	return false
}

// Compare returns -1, 0 or +1 comparing f and g lexicographically.
func (f FP) Compare(g FP) int {
	for i := 0; i < Size; i++ {
		switch {
		case f[i] < g[i]:
			return -1
		case f[i] > g[i]:
			return 1
		}
	}
	return 0
}

// Marshal appends the wire form of f to dst and returns the result.
func (f FP) Marshal(dst []byte) []byte { return append(dst, f[:]...) }

// UnmarshalFP reads a fingerprint from src, returning it and the rest.
func UnmarshalFP(src []byte) (FP, []byte, error) {
	var f FP
	if len(src) < Size {
		return f, nil, fmt.Errorf("fingerprint: short buffer: %d bytes", len(src))
	}
	copy(f[:], src[:Size])
	return f, src[Size:], nil
}

// Bucket maps a fingerprint to one of n buckets using its leading bytes.
// Used to shard fingerprint tables.
func (f FP) Bucket(n int) int {
	if n <= 1 {
		return 0
	}
	v := binary.BigEndian.Uint64(f[:8])
	return int(v % uint64(n))
}
