package fingerprint

import (
	"bytes"
	"crypto/sha1"
	"testing"
	"testing/quick"
)

func TestOfMatchesSHA1(t *testing.T) {
	data := []byte("the quick brown fox")
	want := sha1.Sum(data)
	if got := Of(data); got != FP(want) {
		t.Fatalf("Of() = %s, want %x", got, want)
	}
}

func TestOfEmpty(t *testing.T) {
	if Of(nil) != Of([]byte{}) {
		t.Fatal("Of(nil) and Of(empty) differ")
	}
}

func TestStringAndShort(t *testing.T) {
	fp := Of([]byte("x"))
	if len(fp.String()) != 2*Size {
		t.Errorf("String() length = %d, want %d", len(fp.String()), 2*Size)
	}
	if len(fp.Short()) != 8 {
		t.Errorf("Short() length = %d, want 8", len(fp.Short()))
	}
	if fp.String()[:8] != fp.Short() {
		t.Errorf("Short() %q is not a prefix of String() %q", fp.Short(), fp.String())
	}
}

func TestCompareConsistentWithBytes(t *testing.T) {
	check := func(a, b [Size]byte) bool {
		f, g := FP(a), FP(b)
		want := bytes.Compare(a[:], b[:])
		if f.Compare(g) != want {
			return false
		}
		if f.Less(g) != (want < 0) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	fp := Of([]byte("payload"))
	buf := fp.Marshal(nil)
	got, rest, err := UnmarshalFP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Errorf("round trip: got %s, want %s", got, fp)
	}
	if len(rest) != 0 {
		t.Errorf("unexpected %d trailing bytes", len(rest))
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, _, err := UnmarshalFP(make([]byte, Size-1)); err == nil {
		t.Fatal("expected error on short buffer")
	}
}

func TestBucketRange(t *testing.T) {
	check := func(a [Size]byte, n uint8) bool {
		buckets := int(n%16) + 1
		b := FP(a).Bucket(buckets)
		return b >= 0 && b < buckets
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if (FP{}).Bucket(0) != 0 || (FP{}).Bucket(1) != 0 {
		t.Error("degenerate bucket counts must map to 0")
	}
}
