package fingerprint

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a Table (all integers big endian):
//
//	u32 F | u32 K | u32 nEntries
//	per entry: 20-byte FP | u32 freq | u16 nRanks | nRanks × u32 rank
//
// Designation loads are derivable from the entries and are rebuilt on
// decode, so they are not transmitted.

// MarshalBinary encodes the table for transmission between ranks.
func (t *Table) MarshalBinary() ([]byte, error) {
	entries := t.Entries()
	size := 12
	for _, e := range entries {
		size += Size + 4 + 2 + 4*len(e.Ranks)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.F))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.FP[:]...)
		buf = binary.BigEndian.AppendUint32(buf, e.Freq)
		if len(e.Ranks) > 0xFFFF {
			return nil, fmt.Errorf("fingerprint: %d designated ranks exceed wire limit", len(e.Ranks))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Ranks)))
		for _, r := range e.Ranks {
			buf = binary.BigEndian.AppendUint32(buf, uint32(r))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a table encoded by MarshalBinary.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("fingerprint: table header truncated (%d bytes)", len(data))
	}
	t.F = int(int32(binary.BigEndian.Uint32(data)))
	t.K = int(binary.BigEndian.Uint32(data[4:]))
	n := int(binary.BigEndian.Uint32(data[8:]))
	data = data[12:]
	// The count prefix is peer-controlled: every entry occupies at least
	// Size+6 bytes, so a count the payload cannot hold is corrupt or
	// hostile and must be rejected before it sizes an allocation.
	if n > len(data)/(Size+6) {
		return fmt.Errorf("fingerprint: table claims %d entries in %d bytes", n, len(data))
	}
	t.entries = make(map[FP]*Entry, n)
	t.load = make(map[int32]int32)
	for i := 0; i < n; i++ {
		if len(data) < Size+6 {
			return fmt.Errorf("fingerprint: entry %d truncated", i)
		}
		var e Entry
		copy(e.FP[:], data[:Size])
		e.Freq = binary.BigEndian.Uint32(data[Size:])
		nr := int(binary.BigEndian.Uint16(data[Size+4:]))
		data = data[Size+6:]
		if len(data) < 4*nr {
			return fmt.Errorf("fingerprint: entry %d rank list truncated", i)
		}
		e.Ranks = make([]int32, nr)
		for j := 0; j < nr; j++ {
			e.Ranks[j] = int32(binary.BigEndian.Uint32(data[4*j:]))
			t.load[e.Ranks[j]]++
		}
		data = data[4*nr:]
		if _, dup := t.entries[e.FP]; dup {
			return fmt.Errorf("fingerprint: duplicate entry %s", e.FP.Short())
		}
		t.entries[e.FP] = &e
	}
	if len(data) != 0 {
		return fmt.Errorf("fingerprint: %d trailing bytes after table", len(data))
	}
	return nil
}
