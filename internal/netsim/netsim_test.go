package netsim

import (
	"testing"

	"dedupcr/internal/metrics"
)

func uniformDumps(n int, d metrics.Dump) []metrics.Dump {
	out := make([]metrics.Dump, n)
	for i := range out {
		d.Rank = i
		out[i] = d
	}
	return out
}

func TestNodes(t *testing.T) {
	m := Shamrock()
	cases := map[int]int{1: 1, 12: 1, 13: 2, 408: 34}
	for ranks, want := range cases {
		if got := m.Nodes(ranks); got != want {
			t.Errorf("Nodes(%d) = %d, want %d", ranks, got, want)
		}
	}
}

func TestDumpTimeScalesWithBytes(t *testing.T) {
	m := Shamrock()
	small := m.DumpTime(uniformDumps(24, metrics.Dump{
		HashedBytes: 1 << 20, SentBytes: 1 << 20, RecvBytes: 1 << 20,
		StoredBytes: 1 << 20,
	})).Total()
	big := m.DumpTime(uniformDumps(24, metrics.Dump{
		HashedBytes: 1 << 24, SentBytes: 1 << 24, RecvBytes: 1 << 24,
		StoredBytes: 1 << 24,
	})).Total()
	if big <= small {
		t.Fatalf("16x bytes did not increase time: %g vs %g", big, small)
	}
	if ratio := big / small; ratio < 10 || ratio > 20 {
		t.Errorf("time ratio = %.1f, expected ~16 (bandwidth-bound)", ratio)
	}
}

func TestScaleMultipliesDataNotReduction(t *testing.T) {
	base := metrics.Dump{
		HashedBytes: 1 << 20, SentBytes: 1 << 20, RecvBytes: 1 << 20,
		StoredBytes: 1 << 20, ReductionBytes: 1 << 16, ReductionRounds: 5,
	}
	m := Shamrock()
	unscaled := m.DumpTime(uniformDumps(12, base))
	m.Scale = 1000
	scaled := m.DumpTime(uniformDumps(12, base))
	if scaled.Disk <= 100*unscaled.Disk {
		t.Errorf("disk time not scaled: %g vs %g", scaled.Disk, unscaled.Disk)
	}
	// Reduction traffic is bounded by F, not dataset size: unscaled.
	if scaled.Reduce != unscaled.Reduce {
		t.Errorf("reduction time must not scale with data: %g vs %g", scaled.Reduce, unscaled.Reduce)
	}
}

func TestDumpTimeTakesWorstNode(t *testing.T) {
	m := Shamrock()
	m.RanksPerNode = 1
	dumps := uniformDumps(4, metrics.Dump{StoredBytes: 1 << 20})
	dumps[2].StoredBytes = 1 << 26 // one hot node
	got := m.DumpTime(dumps)
	want := m.DumpTime(uniformDumps(1, metrics.Dump{StoredBytes: 1 << 26}))
	if got.Total() != want.Total() {
		t.Fatalf("worst-node time %g != hot node alone %g", got.Total(), want.Total())
	}
}

func TestExchangeIsFullDuplex(t *testing.T) {
	m := Shamrock()
	m.RanksPerNode = 1
	sendOnly := m.DumpTime(uniformDumps(1, metrics.Dump{SentBytes: 1 << 24})).Exchange
	both := m.DumpTime(uniformDumps(1, metrics.Dump{SentBytes: 1 << 24, RecvBytes: 1 << 24})).Exchange
	if both != sendOnly {
		t.Fatalf("full duplex: send+recv time %g should equal send-only %g", both, sendOnly)
	}
}

func TestReduceOverheadGrowsWithRounds(t *testing.T) {
	m := Shamrock()
	shallow := m.ReduceOverhead(uniformDumps(8, metrics.Dump{ReductionBytes: 1 << 16, ReductionRounds: 3}))
	deep := m.ReduceOverhead(uniformDumps(8, metrics.Dump{ReductionBytes: 1 << 16, ReductionRounds: 9}))
	if deep <= shallow {
		t.Fatalf("more rounds should cost more: %g vs %g", deep, shallow)
	}
}

func TestHashParallelism(t *testing.T) {
	// 12 ranks on 6 cores hash at 6x the single-core rate, not 12x.
	m := Shamrock()
	d := metrics.Dump{HashedBytes: 6 * 400e6} // 6s of single-core hashing
	one := m.DumpTime(uniformDumps(1, d)).Hash
	twelve := m.DumpTime(uniformDumps(12, d)).Hash
	if one != 6.0 {
		t.Fatalf("single-rank hash time = %g, want 6", one)
	}
	// 12 ranks × 6s of work over 6 cores = 12s.
	if twelve != 12.0 {
		t.Fatalf("12-rank hash time = %g, want 12", twelve)
	}
}

func TestRestoreTime(t *testing.T) {
	m := Shamrock()
	m.RanksPerNode = 1
	local := m.RestoreTime([]int64{1 << 24}, []int64{0}, 1)
	remote := m.RestoreTime([]int64{1 << 24}, []int64{1 << 24}, 1)
	if remote <= local {
		t.Fatalf("network recovery must add time: %g vs %g", remote, local)
	}
}

func TestShamrockMatchesPaperNoDedupMagnitude(t *testing.T) {
	// Sanity-check the calibration against Table I: no-dedup at 408
	// procs writes 1.5 GB/rank, sends and receives 2 copies, stores 3.
	// The paper measured ~909s of checkpoint overhead (1188s - 279s).
	m := Shamrock()
	per := metrics.Dump{
		HashedBytes: 0, // no-dedup skips hashing in the paper's setting
		SentBytes:   2 * 1536 << 20,
		RecvBytes:   2 * 1536 << 20,
		StoredBytes: 1536 << 20,
	}
	got := m.DumpTime(uniformDumps(408, per)).Total()
	if got < 600 || got > 1300 {
		t.Fatalf("no-dedup 408-proc dump = %.0fs, expected the paper's ~909s regime", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Hash: 1, Reduce: 2, Exchange: 3, Disk: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %g", b.Total())
	}
	if s := b.String(); s == "" {
		t.Fatal("empty String()")
	}
}
