// Package netsim converts the measured byte/chunk counters of a
// collective dump into simulated wall-clock seconds using an analytic
// model of the paper's Shamrock testbed: 34 nodes, Gigabit Ethernet, one
// local HDD per node, Intel Xeon X5670 (6 cores / 12 threads), 12 ranks
// per node at full scale.
//
// The model is deliberately simple — per-node bandwidth sharing plus
// per-round reduction latency — because the paper's headline effects are
// bandwidth effects: who moves and writes fewer bytes wins. Everything
// the model consumes is measured by the dump pipeline, never estimated.
package netsim

import (
	"fmt"

	"dedupcr/internal/metrics"
)

// Model holds the testbed constants. All bandwidths are bytes/second.
type Model struct {
	// NICBandwidth is the per-node network bandwidth, shared by all
	// ranks of the node, full duplex (sends and receives each get the
	// full rate). GbE with protocol overhead ≈ 117 MB/s.
	NICBandwidth float64
	// DiskWrite is the per-node local HDD write bandwidth, shared by all
	// ranks of the node.
	DiskWrite float64
	// DiskRead is the per-node local HDD read bandwidth (restores).
	DiskRead float64
	// HashRate is the per-core SHA-1 throughput. Each rank hashes on its
	// own hardware thread; oversubscription beyond physical cores halves
	// effective throughput.
	HashRate float64
	// CoresPerNode is the number of physical cores per node.
	CoresPerNode int
	// RanksPerNode is how many ranks share one node (and hence one NIC
	// and one disk).
	RanksPerNode int
	// RoundLatency is the per-round cost of a reduction/broadcast step
	// (message latency plus merge bookkeeping).
	RoundLatency float64
	// MergeRate is the CPU throughput of the HMERGE step over serialized
	// fingerprint table bytes.
	MergeRate float64
	// PFSBandwidth is the effective aggregate bandwidth a job gets from
	// the decoupled parallel file system (GPFS-style), shared by all of
	// the job's ranks and contended with other jobs — the bottleneck the
	// paper's introduction motivates local storage with.
	PFSBandwidth float64
	// Scale multiplies every measured byte count before conversion to
	// time, letting a scaled-down in-process workload (e.g. 1.5 MB/rank)
	// stand in for the paper's full-size one (1.5 GB/rank). 0 means 1.
	Scale float64
}

// Shamrock returns the model calibrated to the paper's testbed.
func Shamrock() Model {
	return Model{
		NICBandwidth: 117e6,
		DiskWrite:    100e6,
		DiskRead:     110e6,
		HashRate:     400e6,
		CoresPerNode: 6,
		RanksPerNode: 12,
		RoundLatency: 0.015,
		MergeRate:    150e6,
		PFSBandwidth: 1e9,
		Scale:        1,
	}
}

// Breakdown is the simulated time of one collective dump, split by phase.
// Phases within a node are serialized in the order the pipeline runs
// them (hash, reduce, exchange, commit); sends and receives of the
// exchange overlap (full duplex).
type Breakdown struct {
	Hash     float64
	Reduce   float64
	Exchange float64
	Disk     float64
}

// Total returns the end-to-end dump time.
func (b Breakdown) Total() float64 { return b.Hash + b.Reduce + b.Exchange + b.Disk }

func (b Breakdown) String() string {
	return fmt.Sprintf("hash=%.2fs reduce=%.2fs exchange=%.2fs disk=%.2fs total=%.2fs",
		b.Hash, b.Reduce, b.Exchange, b.Disk, b.Total())
}

// nodeOf maps ranks onto nodes contiguously, the usual MPI placement.
func (m Model) nodeOf(rank int) int {
	rpn := m.RanksPerNode
	if rpn < 1 {
		rpn = 1
	}
	return rank / rpn
}

// Nodes returns how many nodes the given rank count occupies.
func (m Model) Nodes(ranks int) int {
	rpn := m.RanksPerNode
	if rpn < 1 {
		rpn = 1
	}
	return (ranks + rpn - 1) / rpn
}

func (m Model) scale() float64 {
	if m.Scale <= 0 {
		return 1
	}
	return m.Scale
}

// DumpTime simulates a collective dump from per-rank metrics: the dump
// completes when the slowest node finishes (the primitive is collective).
func (m Model) DumpTime(dumps []metrics.Dump) Breakdown {
	nNodes := m.Nodes(len(dumps))
	type nodeLoad struct {
		hashed, sent, recv, stored, reduction int64
		rounds                                int
		ranks                                 int
	}
	nodes := make([]nodeLoad, nNodes)
	for i, d := range dumps {
		n := &nodes[m.nodeOf(i)]
		n.hashed += d.HashedBytes
		n.sent += d.SentBytes + d.LoadExchangeBytes
		n.recv += d.RecvBytes
		n.stored += d.StoredBytes + d.RecvBytes
		n.reduction += d.ReductionBytes
		if d.ReductionRounds > n.rounds {
			n.rounds = d.ReductionRounds
		}
		n.ranks++
	}
	s := m.scale()
	var worst Breakdown
	var worstTotal float64
	for _, n := range nodes {
		var b Breakdown
		// Hashing runs in parallel across the node's ranks; threads
		// beyond the physical cores share them.
		eff := float64(n.ranks)
		if eff > float64(m.CoresPerNode) {
			eff = float64(m.CoresPerNode)
		}
		if eff < 1 {
			eff = 1
		}
		b.Hash = float64(n.hashed) * s / (m.HashRate * eff)
		// Reduction: tree rounds pay latency; table traffic pays NIC and
		// merge CPU. Table sizes are bounded by F, not by the dataset,
		// so reduction bytes are NOT scaled by the data scale factor.
		b.Reduce = float64(n.rounds)*m.RoundLatency +
			float64(n.reduction)/m.NICBandwidth +
			float64(n.reduction)/m.MergeRate
		// Exchange: full duplex — the node is done when both directions
		// drain.
		send := float64(n.sent) * s / m.NICBandwidth
		recv := float64(n.recv) * s / m.NICBandwidth
		b.Exchange = send
		if recv > send {
			b.Exchange = recv
		}
		// Commit: everything stored hits the shared local disk.
		b.Disk = float64(n.stored) * s / m.DiskWrite
		if t := b.Total(); t > worstTotal {
			worstTotal, worst = t, b
		}
	}
	return worst
}

// ReduceOverhead simulates only the collective fingerprint reduction part
// of a dump (Figure 3(b)/(c)): hash table traffic and rounds, relative to
// a local-dedup baseline that pays neither.
func (m Model) ReduceOverhead(dumps []metrics.Dump) float64 {
	var worst float64
	nNodes := m.Nodes(len(dumps))
	perNode := make([]int64, nNodes)
	rounds := 0
	for i, d := range dumps {
		perNode[m.nodeOf(i)] += d.ReductionBytes
		if d.ReductionRounds > rounds {
			rounds = d.ReductionRounds
		}
	}
	for _, bytes := range perNode {
		t := float64(rounds)*m.RoundLatency +
			float64(bytes)/m.NICBandwidth +
			float64(bytes)/m.MergeRate
		if t > worst {
			worst = t
		}
	}
	return worst
}

// PFSDumpTime simulates dumping every rank's full dataset to the
// decoupled parallel file system instead of node-local storage: all bytes
// funnel through the shared PFS pipe. This is the baseline architecture
// the paper's introduction argues against.
func (m Model) PFSDumpTime(dumps []metrics.Dump) float64 {
	var total int64
	for _, d := range dumps {
		total += d.DatasetBytes
	}
	bw := m.PFSBandwidth
	if bw <= 0 {
		bw = 1e9
	}
	return float64(total) * m.scale() / bw
}

// RestoreTime simulates a restore: every rank reads its dataset back from
// the local disk; missing chunks arrive over the network (recvBytes).
func (m Model) RestoreTime(readBytes, recvBytes []int64, ranks int) float64 {
	nNodes := m.Nodes(ranks)
	disk := make([]int64, nNodes)
	net := make([]int64, nNodes)
	for r := 0; r < ranks; r++ {
		if r < len(readBytes) {
			disk[m.nodeOf(r)] += readBytes[r]
		}
		if r < len(recvBytes) {
			net[m.nodeOf(r)] += recvBytes[r]
		}
	}
	s := m.scale()
	var worst float64
	for i := range disk {
		t := float64(disk[i])*s/m.DiskRead + float64(net[i])*s/m.NICBandwidth
		if t > worst {
			worst = t
		}
	}
	return worst
}
