package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
)

// clusterRestores builds a deterministic n-rank restore fixture: rank r
// fetched r*100KB from its left neighbour, rank n-1 is a barrier
// straggler, and every rank contributes run-length samples.
func clusterRestores(n int) []metrics.Restore {
	base := time.Unix(1700000000, 0)
	rs := make([]metrics.Restore, n)
	for r := range rs {
		runs := metrics.NewHistogram()
		runs.Record(int64(1 + r))
		runs.Record(256)
		peerBytes := make([]int64, n)
		var fetched int64
		if r > 0 {
			fetched = int64(r) * 100_000
			peerBytes[r-1] = fetched
		}
		sources := 0
		if fetched > 0 {
			sources = 1
		}
		rs[r] = metrics.Restore{
			Rank: r, LogicalBytes: 1_000_000, TotalChunks: 256, UniqueChunks: 250,
			LocalChunks: 256 - r, LocalBytes: 1_000_000 - fetched,
			FetchedChunks: r, FetchedBytes: fetched,
			FetchRequests: int64(r), SourceRanks: sources,
			ObjectsTouched: 200 + r, LargestRun: 256,
			PeerFetchChunks: make([]int64, n), PeerFetchBytes: peerBytes,
			Phases: metrics.RestorePhases{
				Meta:     100 * time.Microsecond,
				Assemble: time.Duration(r+1) * 10 * time.Millisecond,
				Fetch:    time.Duration(r) * 5 * time.Millisecond,
				Barrier:  time.Millisecond,
				Total:    time.Duration(r+2) * 11 * time.Millisecond,
			},
			BarrierExit: base.Add(time.Duration(r) * time.Microsecond),
			RunLengths:  runs,
		}
	}
	// Make the last rank an unambiguous barrier straggler.
	rs[n-1].Phases.Barrier = 50 * time.Millisecond
	return rs
}

func TestAggregateRestore(t *testing.T) {
	n := 4
	cr, err := AggregateRestore(clusterRestores(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Kind != "restore" {
		t.Errorf("Kind: got %q, want \"restore\"", cr.Kind)
	}
	if cr.Ranks != n {
		t.Errorf("Ranks: got %d, want %d", cr.Ranks, n)
	}
	if got, want := cr.TotalLogicalBytes, int64(4_000_000); got != want {
		t.Errorf("TotalLogicalBytes: got %d, want %d", got, want)
	}
	// Ranks 1..3 fetched 100k, 200k, 300k.
	if got, want := cr.TotalFetchedBytes, int64(600_000); got != want {
		t.Errorf("TotalFetchedBytes: got %d, want %d", got, want)
	}
	if got, want := cr.ReadAmplificationBytes, 0.15; got != want {
		t.Errorf("ReadAmplificationBytes: got %g, want %g", got, want)
	}
	if got, want := cr.ReadAmplificationChunks, 6.0/1000.0; got != want {
		t.Errorf("ReadAmplificationChunks: got %g, want %g", got, want)
	}
	// Fetch imbalance: per-rank fetched {0,100k,200k,300k}: max 300k / mean 150k.
	if got, want := cr.FetchImbalance, 2.0; got != want {
		t.Errorf("FetchImbalance: got %g, want %g", got, want)
	}
	// Serve columns: rank 0 served 100k, 1 served 200k, 2 served 300k.
	if got, want := cr.ServeImbalance, 2.0; got != want {
		t.Errorf("ServeImbalance: got %g, want %g", got, want)
	}
	if cr.MaxSourceRanks != 1 {
		t.Errorf("MaxSourceRanks: got %d, want 1", cr.MaxSourceRanks)
	}
	if cr.FetchMatrix == nil || cr.FetchMatrix[3][2] != 300_000 {
		t.Errorf("FetchMatrix wrong: %v", cr.FetchMatrix)
	}
	if got, want := cr.RunLengths.Count, int64(2*n); got != want {
		t.Errorf("RunLengths.Count: got %d, want %d", got, want)
	}
	if cr.RunLengths.Max != 256 {
		t.Errorf("RunLengths.Max: got %d, want 256", cr.RunLengths.Max)
	}
	var distSum int64
	for _, c := range cr.RunLengthDist {
		distSum += c
	}
	if distSum != cr.RunLengths.Count {
		t.Errorf("RunLengthDist sums to %d, want %d", distSum, cr.RunLengths.Count)
	}
	if got := cr.Phase("assemble"); got.Max != 40*time.Millisecond || got.SlowestRank != 3 {
		t.Errorf("assemble phase stat wrong: %+v", got)
	}
	if got := cr.Phase("total"); got.Min != 22*time.Millisecond {
		t.Errorf("total min wrong: %+v", got)
	}
	if cr.ClockSpread != 3*time.Microsecond {
		t.Errorf("ClockSpread: got %v, want 3µs", cr.ClockSpread)
	}
	if cr.PerRank[3].ClockOffset != 0 || cr.PerRank[0].ClockOffset != 3*time.Microsecond {
		t.Errorf("clock offsets wrong: %+v", cr.PerRank)
	}

	// The barrier blow-up on rank n-1 must be flagged; the fetch phase
	// must never be (it is contained in assemble).
	found := false
	for _, s := range cr.Stragglers {
		if s.Phase == "fetch" || s.Phase == "total" {
			t.Errorf("straggler flagged on excluded phase %q", s.Phase)
		}
		if s.Rank == n-1 && s.Phase == "restore-barrier" {
			found = true
		}
	}
	if !found {
		t.Errorf("barrier straggler not flagged: %+v", cr.Stragglers)
	}
	if got := cr.StragglersFor(n - 1); len(got) == 0 {
		t.Error("StragglersFor missed the straggler rank")
	}
}

func TestAggregateRestoreRejects(t *testing.T) {
	if _, err := AggregateRestore(nil, Options{}); err == nil {
		t.Error("empty slice accepted")
	}
	rs := clusterRestores(3)
	rs[2].Rank = 0
	if _, err := AggregateRestore(rs, Options{}); err == nil {
		t.Error("duplicate rank accepted")
	}
	rs = clusterRestores(3)
	rs[1].Rank = 7
	if _, err := AggregateRestore(rs, Options{}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestClusterRestoreJSONKind pins the JSON discriminator contract that
// dedupstat relies on: a marshalled ClusterRestore carries Kind
// "restore" and survives a round trip.
func TestClusterRestoreJSONKind(t *testing.T) {
	cr, err := AggregateRestore(clusterRestores(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cr)
	if err != nil {
		t.Fatal(err)
	}
	var probe struct{ Kind string }
	if err := json.Unmarshal(data, &probe); err != nil || probe.Kind != "restore" {
		t.Fatalf("Kind probe: %q, %v", probe.Kind, err)
	}
	var back ClusterRestore
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ranks != cr.Ranks || back.ReadAmplificationBytes != cr.ReadAmplificationBytes ||
		back.RunLengths != cr.RunLengths || len(back.PerRank) != len(cr.PerRank) {
		t.Errorf("JSON round trip mismatch: %+v", back)
	}
}

func TestClusterRestoreWriteText(t *testing.T) {
	cr, err := AggregateRestore(clusterRestores(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cr.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"cluster restore: 4 ranks",
		"assemble",
		"read amplification: 0.150x bytes",
		"fetch RPCs: 6",
		"run lengths (chunks):",
		"restore-barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

// TestGatherClusterRestore runs the in-band restore gather over an
// in-process group: only rank 0 gets the aggregate, and it matches a
// direct AggregateRestore of the same fixture.
func TestGatherClusterRestore(t *testing.T) {
	n := 4
	fix := clusterRestores(n)
	var got *ClusterRestore
	err := collectives.Run(n, func(c collectives.Comm) error {
		cr, err := GatherClusterRestore(c, fix[c.Rank()], Options{})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if cr != nil {
				t.Errorf("rank %d got a non-nil aggregate", c.Rank())
			}
			return nil
		}
		got = cr
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := AggregateRestore(clusterRestores(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("rank 0 got no aggregate")
	}
	if got.TotalFetchedBytes != want.TotalFetchedBytes ||
		got.ReadAmplificationBytes != want.ReadAmplificationBytes ||
		got.RunLengths != want.RunLengths ||
		got.FetchImbalance != want.FetchImbalance {
		t.Errorf("gathered aggregate differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestClusterRestoreExpositionWellFormed runs the strict checker over
// the dedupcr_cluster_restore_* families and pins key samples.
func TestClusterRestoreExpositionWellFormed(t *testing.T) {
	cr, err := AggregateRestore(clusterRestores(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cr.WritePrometheus(&buf)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("cluster restore exposition malformed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dedupcr_cluster_restore_ranks 4",
		`dedupcr_cluster_restore_phase_seconds{phase="assemble",stat="median"}`,
		`dedupcr_cluster_restore_phase_slowest_rank{phase="assemble"} 3`,
		"dedupcr_cluster_restore_read_amplification_bytes 0.150000",
		"dedupcr_cluster_restore_fetch_imbalance 2.000",
		`dedupcr_cluster_restore_rank_fetched_bytes{rank="3"} 300000`,
		`dedupcr_cluster_restore_run_length_chunks{stat="max"} 256`,
		"dedupcr_cluster_restore_stragglers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A quiet cluster (no fetches, no stragglers) must still be
	// well-formed and must omit the straggler-excess family.
	flat := make([]metrics.Restore, 2)
	for r := range flat {
		flat[r] = metrics.Restore{Rank: r, LogicalBytes: 1000, LocalBytes: 1000}
	}
	crFlat, err := AggregateRestore(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	crFlat.WritePrometheus(&buf)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("flat cluster restore exposition malformed: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "straggler_excess") {
		t.Errorf("flat cluster still exposes straggler excess:\n%s", buf.String())
	}
}
