package telemetry

import (
	"fmt"
	"io"
)

// WritePrometheus emits the cluster dump in the Prometheus plain-text
// exposition format: the dedupcr_cluster_* families replicad's rank 0
// serves at /cluster/metrics. Unlike the per-rank dedupcr_* families,
// these are already reduced across the group, so one scrape of rank 0
// sees the whole cluster.
func (cd *ClusterDump) WritePrometheus(w io.Writer) {
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	gauge("dedupcr_cluster_ranks", "Number of ranks aggregated into the cluster dump.")
	fmt.Fprintf(w, "dedupcr_cluster_ranks %d\n", cd.Ranks)

	gauge("dedupcr_cluster_phase_seconds", "Cross-rank spread of one dump pipeline phase (stat: min/median/p95/max/mean).")
	for _, ps := range cd.Phases {
		for _, s := range []struct {
			stat string
			v    float64
		}{
			{"min", ps.Min.Seconds()}, {"median", ps.Median.Seconds()},
			{"p95", ps.P95.Seconds()}, {"max", ps.Max.Seconds()},
			{"mean", ps.Mean.Seconds()},
		} {
			fmt.Fprintf(w, "dedupcr_cluster_phase_seconds{phase=%q,stat=%q} %.9f\n", ps.Name, s.stat, s.v)
		}
	}

	gauge("dedupcr_cluster_phase_slowest_rank", "Rank with the maximum duration of one pipeline phase.")
	for _, ps := range cd.Phases {
		fmt.Fprintf(w, "dedupcr_cluster_phase_slowest_rank{phase=%q} %d\n", ps.Name, ps.SlowestRank)
	}

	gauge("dedupcr_cluster_sent_bytes", "Replication bytes pushed to partners, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_sent_bytes %d\n", cd.TotalSentBytes)
	gauge("dedupcr_cluster_recv_bytes", "Replication bytes received from partners, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_recv_bytes %d\n", cd.TotalRecvBytes)
	gauge("dedupcr_cluster_stored_bytes", "Bytes committed to local stores, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_stored_bytes %d\n", cd.TotalStoredBytes)
	gauge("dedupcr_cluster_put_retries", "Window puts retried after transient transport failures, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_put_retries %d\n", cd.TotalPutRetries)

	gauge("dedupcr_cluster_rank_sent_bytes", "Replication bytes one rank pushed to partners.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_sent_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.SentBytes)
	}
	gauge("dedupcr_cluster_rank_recv_bytes", "Replication bytes one rank received from partners.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_recv_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.RecvBytes)
	}
	gauge("dedupcr_cluster_rank_stored_bytes", "Bytes one rank committed to its local store.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_stored_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.StoredBytes)
	}
	gauge("dedupcr_cluster_rank_total_seconds", "End-to-end dump time of one rank.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_total_seconds{rank=\"%d\"} %.9f\n", rs.Rank, rs.Total.Seconds())
	}

	gauge("dedupcr_cluster_designation_imbalance", "Max/mean of per-rank stored bytes (1.0 = balanced designation).")
	fmt.Fprintf(w, "dedupcr_cluster_designation_imbalance %.6f\n", cd.DesignationImbalance)
	gauge("dedupcr_cluster_send_imbalance", "Max/mean of per-rank sent bytes (1.0 = balanced sends).")
	fmt.Fprintf(w, "dedupcr_cluster_send_imbalance %.6f\n", cd.SendImbalance)

	gauge("dedupcr_cluster_clock_offset_seconds", "Estimated lag of one rank's wall clock behind the group's latest barrier-exit stamp.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_clock_offset_seconds{rank=\"%d\"} %.9f\n", rs.Rank, rs.ClockOffset.Seconds())
	}
	gauge("dedupcr_cluster_clock_spread_seconds", "Width of the barrier-exit stamp window: upper bound on pairwise clock-offset error.")
	fmt.Fprintf(w, "dedupcr_cluster_clock_spread_seconds %.9f\n", cd.ClockSpread.Seconds())

	gauge("dedupcr_cluster_stragglers", "Number of flagged (rank, phase) straggler pairs.")
	fmt.Fprintf(w, "dedupcr_cluster_stragglers %d\n", len(cd.Stragglers))
	if len(cd.Stragglers) > 0 {
		gauge("dedupcr_cluster_straggler_excess_seconds", "How far a flagged rank's phase time overshot the cluster median.")
		for _, s := range cd.Stragglers {
			fmt.Fprintf(w, "dedupcr_cluster_straggler_excess_seconds{rank=\"%d\",phase=%q} %.9f\n",
				s.Rank, s.Phase, s.Excess().Seconds())
		}
	}
}

// WritePrometheus emits the cluster restore in the Prometheus plain-text
// exposition format: the dedupcr_cluster_restore_* families replicad's
// rank 0 serves at /restore/metrics — already reduced across the group,
// so one scrape of rank 0 sees the whole cluster's restore cost.
func (cr *ClusterRestore) WritePrometheus(w io.Writer) {
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	gauge("dedupcr_cluster_restore_ranks", "Number of ranks aggregated into the cluster restore.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_ranks %d\n", cr.Ranks)

	gauge("dedupcr_cluster_restore_phase_seconds", "Cross-rank spread of one restore pipeline phase (stat: min/median/p95/max/mean).")
	for _, ps := range cr.Phases {
		for _, s := range []struct {
			stat string
			v    float64
		}{
			{"min", ps.Min.Seconds()}, {"median", ps.Median.Seconds()},
			{"p95", ps.P95.Seconds()}, {"max", ps.Max.Seconds()},
			{"mean", ps.Mean.Seconds()},
		} {
			fmt.Fprintf(w, "dedupcr_cluster_restore_phase_seconds{phase=%q,stat=%q} %.9f\n", ps.Name, s.stat, s.v)
		}
	}

	gauge("dedupcr_cluster_restore_phase_slowest_rank", "Rank with the maximum duration of one restore phase.")
	for _, ps := range cr.Phases {
		fmt.Fprintf(w, "dedupcr_cluster_restore_phase_slowest_rank{phase=%q} %d\n", ps.Name, ps.SlowestRank)
	}

	gauge("dedupcr_cluster_restore_logical_bytes", "Bytes of the reassembled images, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_logical_bytes %d\n", cr.TotalLogicalBytes)
	gauge("dedupcr_cluster_restore_local_bytes", "Bytes served by local stores, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_local_bytes %d\n", cr.TotalLocalBytes)
	gauge("dedupcr_cluster_restore_fetched_bytes", "Bytes pulled from peers, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_fetched_bytes %d\n", cr.TotalFetchedBytes)
	gauge("dedupcr_cluster_restore_fetched_chunks", "Chunks pulled from peers, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_fetched_chunks %d\n", cr.TotalFetchedChunks)
	gauge("dedupcr_cluster_restore_recovered_chunks", "Chunks rebuilt by erasure reconstruction, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_recovered_chunks %d\n", cr.TotalRecoveredChunks)
	gauge("dedupcr_cluster_restore_fetch_requests", "Fetch RPCs issued, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_fetch_requests %d\n", cr.TotalFetchRequests)
	gauge("dedupcr_cluster_restore_fetch_misses", "Fetch RPCs answered not-found, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_fetch_misses %d\n", cr.TotalFetchMisses)
	gauge("dedupcr_cluster_restore_objects_touched", "Distinct local store objects read, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_objects_touched %d\n", cr.TotalObjectsTouched)

	gauge("dedupcr_cluster_restore_read_amplification_bytes", "Cluster-wide bytes fetched from peers over logical image bytes.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_read_amplification_bytes %.6f\n", cr.ReadAmplificationBytes)
	gauge("dedupcr_cluster_restore_read_amplification_chunks", "Cluster-wide chunks fetched from peers over unique chunks.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_read_amplification_chunks %.6f\n", cr.ReadAmplificationChunks)
	gauge("dedupcr_cluster_restore_fetch_imbalance", "Max/mean of per-rank fetched bytes (1.0 = balanced fetch cost).")
	fmt.Fprintf(w, "dedupcr_cluster_restore_fetch_imbalance %.6f\n", cr.FetchImbalance)
	gauge("dedupcr_cluster_restore_serve_imbalance", "Max/mean of per-peer served bytes (1.0 = balanced serving load).")
	fmt.Fprintf(w, "dedupcr_cluster_restore_serve_imbalance %.6f\n", cr.ServeImbalance)
	gauge("dedupcr_cluster_restore_max_source_ranks", "Largest per-rank distinct-source count.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_max_source_ranks %d\n", cr.MaxSourceRanks)

	gauge("dedupcr_cluster_restore_rank_fetched_bytes", "Bytes one rank pulled from peers.")
	for _, rs := range cr.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_restore_rank_fetched_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.FetchedBytes)
	}
	gauge("dedupcr_cluster_restore_rank_read_amplification_bytes", "One rank's byte read amplification.")
	for _, rs := range cr.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_restore_rank_read_amplification_bytes{rank=\"%d\"} %.6f\n", rs.Rank, rs.ReadAmpBytes)
	}
	gauge("dedupcr_cluster_restore_rank_total_seconds", "End-to-end restore time of one rank.")
	for _, rs := range cr.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_restore_rank_total_seconds{rank=\"%d\"} %.9f\n", rs.Rank, rs.Total.Seconds())
	}

	if cr.RunLengths.Count > 0 {
		gauge("dedupcr_cluster_restore_run_length_chunks", "Merged same-source run-length distribution (stat: p50/p90/p99/max/mean).")
		for _, s := range []struct {
			stat string
			v    float64
		}{
			{"p50", float64(cr.RunLengths.P50)}, {"p90", float64(cr.RunLengths.P90)},
			{"p99", float64(cr.RunLengths.P99)}, {"max", float64(cr.RunLengths.Max)},
			{"mean", cr.RunLengths.Mean},
		} {
			fmt.Fprintf(w, "dedupcr_cluster_restore_run_length_chunks{stat=%q} %.3f\n", s.stat, s.v)
		}
	}
	if cr.FetchLatency.Count > 0 {
		gauge("dedupcr_cluster_restore_fetch_latency_seconds", "Merged per-RPC fetch latency (stat: p50/p90/p99/max/mean).")
		for _, s := range []struct {
			stat string
			v    float64
		}{
			{"p50", float64(cr.FetchLatency.P50) / 1e9}, {"p90", float64(cr.FetchLatency.P90) / 1e9},
			{"p99", float64(cr.FetchLatency.P99) / 1e9}, {"max", float64(cr.FetchLatency.Max) / 1e9},
			{"mean", cr.FetchLatency.Mean / 1e9},
		} {
			fmt.Fprintf(w, "dedupcr_cluster_restore_fetch_latency_seconds{stat=%q} %.9f\n", s.stat, s.v)
		}
	}

	gauge("dedupcr_cluster_restore_clock_spread_seconds", "Width of the restore barrier-exit stamp window.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_clock_spread_seconds %.9f\n", cr.ClockSpread.Seconds())

	gauge("dedupcr_cluster_restore_stragglers", "Number of flagged (rank, phase) restore straggler pairs.")
	fmt.Fprintf(w, "dedupcr_cluster_restore_stragglers %d\n", len(cr.Stragglers))
	if len(cr.Stragglers) > 0 {
		gauge("dedupcr_cluster_restore_straggler_excess_seconds", "How far a flagged rank's restore phase time overshot the cluster median.")
		for _, s := range cr.Stragglers {
			fmt.Fprintf(w, "dedupcr_cluster_restore_straggler_excess_seconds{rank=\"%d\",phase=%q} %.9f\n",
				s.Rank, s.Phase, s.Excess().Seconds())
		}
	}
}
