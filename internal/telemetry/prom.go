package telemetry

import (
	"fmt"
	"io"
)

// WritePrometheus emits the cluster dump in the Prometheus plain-text
// exposition format: the dedupcr_cluster_* families replicad's rank 0
// serves at /cluster/metrics. Unlike the per-rank dedupcr_* families,
// these are already reduced across the group, so one scrape of rank 0
// sees the whole cluster.
func (cd *ClusterDump) WritePrometheus(w io.Writer) {
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	gauge("dedupcr_cluster_ranks", "Number of ranks aggregated into the cluster dump.")
	fmt.Fprintf(w, "dedupcr_cluster_ranks %d\n", cd.Ranks)

	gauge("dedupcr_cluster_phase_seconds", "Cross-rank spread of one dump pipeline phase (stat: min/median/p95/max/mean).")
	for _, ps := range cd.Phases {
		for _, s := range []struct {
			stat string
			v    float64
		}{
			{"min", ps.Min.Seconds()}, {"median", ps.Median.Seconds()},
			{"p95", ps.P95.Seconds()}, {"max", ps.Max.Seconds()},
			{"mean", ps.Mean.Seconds()},
		} {
			fmt.Fprintf(w, "dedupcr_cluster_phase_seconds{phase=%q,stat=%q} %.9f\n", ps.Name, s.stat, s.v)
		}
	}

	gauge("dedupcr_cluster_phase_slowest_rank", "Rank with the maximum duration of one pipeline phase.")
	for _, ps := range cd.Phases {
		fmt.Fprintf(w, "dedupcr_cluster_phase_slowest_rank{phase=%q} %d\n", ps.Name, ps.SlowestRank)
	}

	gauge("dedupcr_cluster_sent_bytes", "Replication bytes pushed to partners, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_sent_bytes %d\n", cd.TotalSentBytes)
	gauge("dedupcr_cluster_recv_bytes", "Replication bytes received from partners, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_recv_bytes %d\n", cd.TotalRecvBytes)
	gauge("dedupcr_cluster_stored_bytes", "Bytes committed to local stores, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_stored_bytes %d\n", cd.TotalStoredBytes)
	gauge("dedupcr_cluster_put_retries", "Window puts retried after transient transport failures, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_put_retries %d\n", cd.TotalPutRetries)

	gauge("dedupcr_cluster_rank_sent_bytes", "Replication bytes one rank pushed to partners.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_sent_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.SentBytes)
	}
	gauge("dedupcr_cluster_rank_recv_bytes", "Replication bytes one rank received from partners.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_recv_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.RecvBytes)
	}
	gauge("dedupcr_cluster_rank_stored_bytes", "Bytes one rank committed to its local store.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_stored_bytes{rank=\"%d\"} %d\n", rs.Rank, rs.StoredBytes)
	}
	gauge("dedupcr_cluster_rank_total_seconds", "End-to-end dump time of one rank.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_rank_total_seconds{rank=\"%d\"} %.9f\n", rs.Rank, rs.Total.Seconds())
	}

	gauge("dedupcr_cluster_designation_imbalance", "Max/mean of per-rank stored bytes (1.0 = balanced designation).")
	fmt.Fprintf(w, "dedupcr_cluster_designation_imbalance %.6f\n", cd.DesignationImbalance)
	gauge("dedupcr_cluster_send_imbalance", "Max/mean of per-rank sent bytes (1.0 = balanced sends).")
	fmt.Fprintf(w, "dedupcr_cluster_send_imbalance %.6f\n", cd.SendImbalance)

	gauge("dedupcr_cluster_clock_offset_seconds", "Estimated lag of one rank's wall clock behind the group's latest barrier-exit stamp.")
	for _, rs := range cd.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_clock_offset_seconds{rank=\"%d\"} %.9f\n", rs.Rank, rs.ClockOffset.Seconds())
	}
	gauge("dedupcr_cluster_clock_spread_seconds", "Width of the barrier-exit stamp window: upper bound on pairwise clock-offset error.")
	fmt.Fprintf(w, "dedupcr_cluster_clock_spread_seconds %.9f\n", cd.ClockSpread.Seconds())

	gauge("dedupcr_cluster_stragglers", "Number of flagged (rank, phase) straggler pairs.")
	fmt.Fprintf(w, "dedupcr_cluster_stragglers %d\n", len(cd.Stragglers))
	if len(cd.Stragglers) > 0 {
		gauge("dedupcr_cluster_straggler_excess_seconds", "How far a flagged rank's phase time overshot the cluster median.")
		for _, s := range cd.Stragglers {
			fmt.Fprintf(w, "dedupcr_cluster_straggler_excess_seconds{rank=\"%d\",phase=%q} %.9f\n",
				s.Rank, s.Phase, s.Excess().Seconds())
		}
	}
}
