package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dedupcr/internal/trace"
)

// RankTrace is one rank's slice of a dump timeline, destined for the
// merged cross-rank trace.
type RankTrace struct {
	// Rank becomes the pid of the merged trace's track group.
	Rank int
	// Label names the track group; empty defaults to "rank N".
	Label string
	// Events are the rank's recorded spans, on the rank's own monotonic
	// clock. Each rank may carry several tid tracks (worker pools).
	Events []trace.Event
}

// anchorName is the span the alignment keys on: the dump's completion
// barrier, which every rank exits within one dissemination sweep.
const anchorName = "barrier"

// anchor returns the alignment instant of one rank's event set: the end
// of its last completion-barrier span, falling back to the last span end
// when no barrier was recorded. ok is false for an empty event set.
func anchor(evs []trace.Event) (time.Duration, bool) {
	var barrier, last time.Duration
	haveBarrier := false
	for _, e := range evs {
		if e.End() > last {
			last = e.End()
		}
		if e.Name == anchorName && e.End() > barrier {
			barrier, haveBarrier = e.End(), true
		}
	}
	if len(evs) == 0 {
		return 0, false
	}
	if haveBarrier {
		return barrier, true
	}
	return last, true
}

// Align shifts every rank's events onto a common timeline: each rank's
// completion-barrier end is moved to coincide with the latest one in the
// group (shifts are non-negative, so no event moves before its rank's
// origin). The returned offsets (indexed like ranks) are the applied
// shifts — on ranks driven by one shared clock they measure per-rank
// barrier-exit spread; across machines they absorb both clock offset and
// barrier skew. Ranks without events keep a zero offset. The input is
// not modified.
func Align(ranks []RankTrace) ([]RankTrace, []time.Duration) {
	anchors := make([]time.Duration, len(ranks))
	have := make([]bool, len(ranks))
	var ref time.Duration
	for i, rt := range ranks {
		anchors[i], have[i] = anchor(rt.Events)
		if have[i] && anchors[i] > ref {
			ref = anchors[i]
		}
	}
	out := make([]RankTrace, len(ranks))
	offsets := make([]time.Duration, len(ranks))
	for i, rt := range ranks {
		out[i] = RankTrace{Rank: rt.Rank, Label: rt.Label}
		if !have[i] {
			continue
		}
		offsets[i] = ref - anchors[i]
		evs := make([]trace.Event, len(rt.Events))
		for j, e := range rt.Events {
			e.Start += offsets[i]
			e.Pid = rt.Rank
			evs[j] = e
		}
		out[i].Events = evs
	}
	return out, offsets
}

// MergeTraces writes one Chrome trace holding every rank's events on a
// clock-aligned common timeline: one pid (track group) per rank, the
// rank's own tids preserved underneath. When cd is non-nil, each flagged
// straggler adds an instant marker ("straggler put" etc.) at the end of
// the slowest matching span of that rank, so flagged phases stand out on
// the timeline.
func MergeTraces(w io.Writer, ranks []RankTrace, cd *ClusterDump) error {
	aligned, _ := Align(ranks)

	pidNames := make(map[int]string, len(aligned))
	threadNames := make(map[trace.Track]string)
	var merged []trace.Event
	for _, rt := range aligned {
		label := rt.Label
		if label == "" {
			label = fmt.Sprintf("rank %d", rt.Rank)
		}
		pidNames[rt.Rank] = label
		tids := make(map[int]bool)
		for _, e := range rt.Events {
			tids[e.Tid] = true
		}
		for tid := range tids {
			name := label
			if len(tids) > 1 {
				name = fmt.Sprintf("%s tid %d", label, tid)
			}
			threadNames[trace.Track{Pid: rt.Rank, Tid: tid}] = name
		}
		merged = append(merged, rt.Events...)

		if cd == nil {
			continue
		}
		for _, s := range cd.StragglersFor(rt.Rank) {
			if ev, ok := slowestSpan(rt.Events, s.Phase); ok {
				merged = append(merged, trace.Event{
					Name: "straggler " + s.Phase, Pid: rt.Rank, Tid: ev.Tid,
					Start: ev.End(),
					Args: map[string]string{
						"phase":  s.Phase,
						"dur":    s.Duration.String(),
						"median": s.Median.String(),
						"excess": s.Excess().String(),
					},
				})
			}
		}
	}

	pruneUnmatchedFlows(merged)
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].Start != merged[j].Start {
			return merged[i].Start < merged[j].Start
		}
		return merged[i].Dur > merged[j].Dur
	})
	return trace.WriteChrome(w, merged, pidNames, threadNames)
}

// pruneUnmatchedFlows strips the flow linkage from wire events whose
// counterpart did not make it into the merged set (the peer's trace was
// dropped, truncated, or the rank died mid-frame): the causal arrows the
// merged trace draws must connect a send to its receive, never dangle.
// The events themselves stay — only their FlowID/FlowOp are cleared.
func pruneUnmatchedFlows(evs []trace.Event) {
	starts := make(map[uint64]int)
	finishes := make(map[uint64]int)
	for _, e := range evs {
		switch e.FlowOp {
		case trace.FlowStart:
			starts[e.FlowID]++
		case trace.FlowFinish:
			finishes[e.FlowID]++
		}
	}
	for i := range evs {
		if evs[i].FlowOp == trace.FlowNone {
			continue
		}
		if starts[evs[i].FlowID] == 0 || finishes[evs[i].FlowID] == 0 {
			evs[i].FlowID = 0
			evs[i].FlowOp = trace.FlowNone
		}
	}
}

// slowestSpan finds the longest span with the given name.
func slowestSpan(evs []trace.Event, name string) (trace.Event, bool) {
	var best trace.Event
	found := false
	for _, e := range evs {
		if e.Name == name && (!found || e.Dur > best.Dur) {
			best, found = e, true
		}
	}
	return best, found
}

// SplitByTid partitions one shared-trace event set into per-rank traces,
// treating the tid of each event as the rank — the layout in-process
// simulations record (one Trace, tid = rank). It is the bridge from
// experiments.RunScenario's shared trace to MergeTraces.
func SplitByTid(evs []trace.Event) []RankTrace {
	byTid := make(map[int][]trace.Event)
	maxTid := -1
	for _, e := range evs {
		byTid[e.Tid] = append(byTid[e.Tid], e)
		if e.Tid > maxTid {
			maxTid = e.Tid
		}
	}
	out := make([]RankTrace, maxTid+1)
	for tid := 0; tid <= maxTid; tid++ {
		out[tid] = RankTrace{Rank: tid, Events: byTid[tid]}
	}
	return out
}
