package telemetry

import (
	"bytes"
	"testing"
)

// TestDumpEncodingByteIdentical pins the telemetry wire encoding: 100
// independently built dumps of the same metrics must encode to the same
// bytes, so the cross-rank trace merge and the gather's rank check never
// see layout-dependent output.
func TestDumpEncodingByteIdentical(t *testing.T) {
	want, err := EncodeDump(fullDump(3))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 100; run++ {
		got, err := EncodeDump(fullDump(3))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: encoding differs (%d vs %d bytes)", run, len(got), len(want))
		}
	}
}
