// Package telemetry is the cluster-wide observability plane of the
// collective dump pipeline: it gathers every rank's metrics.Dump to rank
// 0 over the group's own collectives (in-band, no side channel), reduces
// them into a ClusterDump — per-phase spread statistics, traffic totals,
// load-imbalance coefficients and straggler flags — merges per-rank
// traces onto one clock-aligned timeline, and exposes the result as a
// Prometheus exposition, a text table and Chrome trace JSON.
//
// Clock model: every rank stamps the wall-clock instant it leaves the
// dump's completion barrier (metrics.Dump.BarrierExit). A dissemination
// barrier releases all ranks within ceil(log2 N) message latencies of
// each other, so the spread of these stamps bounds the inter-node clock
// offsets to within that window — microseconds in-process, a network
// round trip across machines. Offsets are reported relative to the
// latest stamp; merged traces are aligned on the completion-barrier span
// instead, which carries the same bound on monotonic clocks.
package telemetry

import (
	"fmt"
	"io"
	"time"

	"dedupcr/internal/metrics"
)

// Options tunes cluster aggregation.
type Options struct {
	// StragglerFactor flags a rank for a phase when its phase time
	// exceeds this multiple of the cluster median. 0 selects
	// DefaultStragglerFactor; negative disables straggler detection.
	StragglerFactor float64
	// MinExcess suppresses straggler flags whose absolute excess over
	// the median is below this floor, so microsecond phases cannot tip a
	// rank into "straggler" on scheduling noise. 0 selects
	// DefaultMinExcess.
	MinExcess time.Duration
}

// Defaults for Options. The factor-2 threshold with a millisecond floor
// keeps ordinary in-process scheduling jitter out of the straggler list;
// deployments chasing tail latency can tighten both.
const (
	DefaultStragglerFactor = 2.0
	DefaultMinExcess       = time.Millisecond
)

func (o Options) normalized() Options {
	if o.StragglerFactor == 0 {
		o.StragglerFactor = DefaultStragglerFactor
	}
	if o.MinExcess == 0 {
		o.MinExcess = DefaultMinExcess
	}
	return o
}

// PhaseStat is the cross-rank spread of one pipeline phase.
type PhaseStat struct {
	// Name is the phase label (one of metrics.PhaseNames, or "total").
	Name string
	// Min/Median/P95/Max summarize the per-rank durations
	// (nearest-rank quantiles).
	Min, Median, P95, Max time.Duration
	// Mean is the arithmetic mean of the per-rank durations.
	Mean time.Duration
	// SlowestRank is the rank with the maximum duration (lowest rank
	// wins ties).
	SlowestRank int
}

// RankSummary is one rank's line in the cluster view.
type RankSummary struct {
	Rank int
	// SentBytes/RecvBytes are the rank's replication traffic.
	SentBytes, RecvBytes int64
	// StoredBytes is the rank's storage load (own + designated +
	// received), the designation-load proxy of the imbalance
	// coefficient.
	StoredBytes int64
	// Total is the rank's end-to-end dump time.
	Total time.Duration
	// ClockOffset estimates how far this rank's wall clock lags the
	// latest barrier-exit stamp in the group: add it to the rank's local
	// wall times to land on the common timeline. Zero when the rank had
	// no stamp.
	ClockOffset time.Duration
}

// Straggler records one flagged (rank, phase) pair: the rank's phase
// time exceeded StragglerFactor x the cluster median by at least
// MinExcess.
type Straggler struct {
	Rank     int
	Phase    string
	Duration time.Duration
	// Median is the cluster median the duration was compared against.
	Median time.Duration
}

// Excess is how far the straggler overshot the cluster median.
func (s Straggler) Excess() time.Duration { return s.Duration - s.Median }

// ClusterDump is rank 0's reduced view of one collective dump across the
// whole group.
type ClusterDump struct {
	// Ranks is the group size the dump was aggregated over.
	Ranks int
	// Phases holds one spread entry per pipeline phase (in
	// metrics.PhaseNames order) plus a final "total" entry.
	Phases []PhaseStat
	// TotalSentBytes/TotalRecvBytes sum replication traffic over ranks.
	TotalSentBytes, TotalRecvBytes int64
	// TotalStoredBytes sums storage load over ranks.
	TotalStoredBytes int64
	// TotalPutRetries sums window-put retries over ranks: nonzero means
	// the dump survived transient transport faults via its RetryPolicy.
	TotalPutRetries int64
	// PerRank has one summary per rank, indexed by rank.
	PerRank []RankSummary
	// DesignationImbalance is max/mean of per-rank stored bytes: 1.0 is
	// perfectly balanced designation, paper Figure 4 territory. 0 when
	// no rank stored anything.
	DesignationImbalance float64
	// SendImbalance is max/mean of per-rank sent bytes. 0 when no rank
	// sent anything.
	SendImbalance float64
	// Stragglers lists every flagged (rank, phase) pair, ordered by
	// phase pipeline position then rank.
	Stragglers []Straggler
	// ClockSpread is the width of the barrier-exit stamp window: an
	// upper bound on the pairwise clock offset error. Zero when fewer
	// than two ranks carried stamps.
	ClockSpread time.Duration
	// Options echoes the straggler thresholds the dump was reduced with.
	Options Options
}

// imbalance returns max/mean of v, or 0 when the mean is 0.
func imbalance(v []int64) float64 {
	m := metrics.Avg(v)
	if m == 0 {
		return 0
	}
	return float64(metrics.Max(v)) / m
}

// Aggregate reduces per-rank dump metrics into a ClusterDump. It is a
// pure function: the in-band gather path (GatherCluster) and the
// experiment harness both call it, so simulated and live clusters report
// through identical code. The dumps slice may be in any rank order;
// every rank must appear exactly once.
func Aggregate(dumps []metrics.Dump, opts Options) (*ClusterDump, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("telemetry: no dumps to aggregate")
	}
	opts = opts.normalized()
	byRank := make([]*metrics.Dump, len(dumps))
	for i := range dumps {
		d := &dumps[i]
		if d.Rank < 0 || d.Rank >= len(dumps) {
			return nil, fmt.Errorf("telemetry: dump rank %d out of range [0,%d)", d.Rank, len(dumps))
		}
		if byRank[d.Rank] != nil {
			return nil, fmt.Errorf("telemetry: duplicate dump for rank %d", d.Rank)
		}
		byRank[d.Rank] = d
	}

	cd := &ClusterDump{Ranks: len(dumps), Options: opts}

	// Clock offsets: latest barrier-exit stamp is the reference; each
	// rank's offset is how far its stamp lags it.
	var ref time.Time
	for _, d := range byRank {
		if d.BarrierExit.After(ref) {
			ref = d.BarrierExit
		}
	}
	var earliest time.Time
	cd.PerRank = make([]RankSummary, len(byRank))
	for r, d := range byRank {
		rs := RankSummary{
			Rank: r, SentBytes: d.SentBytes, RecvBytes: d.RecvBytes,
			StoredBytes: d.StoredBytes, Total: d.Phases.Total,
		}
		if !d.BarrierExit.IsZero() {
			rs.ClockOffset = ref.Sub(d.BarrierExit)
			if earliest.IsZero() || d.BarrierExit.Before(earliest) {
				earliest = d.BarrierExit
			}
		}
		cd.PerRank[r] = rs
		cd.TotalSentBytes += d.SentBytes
		cd.TotalRecvBytes += d.RecvBytes
		cd.TotalStoredBytes += d.StoredBytes
		cd.TotalPutRetries += d.PutRetries
	}
	if !earliest.IsZero() {
		cd.ClockSpread = ref.Sub(earliest)
	}

	cd.DesignationImbalance = imbalance(collectInts(byRank, func(d *metrics.Dump) int64 { return d.StoredBytes }))
	cd.SendImbalance = imbalance(collectInts(byRank, func(d *metrics.Dump) int64 { return d.SentBytes }))

	names := append(append([]string(nil), metrics.PhaseNames...), "total")
	for _, name := range names {
		durs := make([]int64, len(byRank))
		for r, d := range byRank {
			if name == "total" {
				durs[r] = int64(d.Phases.Total)
			} else {
				durs[r] = int64(d.Phases.ByName(name))
			}
		}
		ps := PhaseStat{
			Name:   name,
			Min:    time.Duration(metrics.Quantile(durs, 0)),
			Median: time.Duration(metrics.Quantile(durs, 0.5)),
			P95:    time.Duration(metrics.Quantile(durs, 0.95)),
			Max:    time.Duration(metrics.Max(durs)),
			Mean:   time.Duration(metrics.Avg(durs)),
		}
		for r, v := range durs {
			if time.Duration(v) == ps.Max {
				ps.SlowestRank = r
				break
			}
		}
		cd.Phases = append(cd.Phases, ps)

		// Straggler rule: duration > factor x median AND excess >= floor.
		if name == "total" || opts.StragglerFactor < 0 {
			continue
		}
		median := time.Duration(metrics.Quantile(durs, 0.5))
		for r, v := range durs {
			d := time.Duration(v)
			if float64(d) > opts.StragglerFactor*float64(median) && d-median >= opts.MinExcess {
				cd.Stragglers = append(cd.Stragglers, Straggler{
					Rank: r, Phase: name, Duration: d, Median: median,
				})
			}
		}
	}
	return cd, nil
}

func collectInts(byRank []*metrics.Dump, sel func(*metrics.Dump) int64) []int64 {
	out := make([]int64, len(byRank))
	for r, d := range byRank {
		out[r] = sel(d)
	}
	return out
}

// StragglersFor returns the flagged stragglers of one rank, in phase
// order.
func (cd *ClusterDump) StragglersFor(rank int) []Straggler {
	var out []Straggler
	for _, s := range cd.Stragglers {
		if s.Rank == rank {
			out = append(out, s)
		}
	}
	return out
}

// Phase returns the spread entry for the named phase, or a zero
// PhaseStat when absent.
func (cd *ClusterDump) Phase(name string) PhaseStat {
	for _, ps := range cd.Phases {
		if ps.Name == name {
			return ps
		}
	}
	return PhaseStat{}
}

// WriteText renders the cluster dump as the fixed-width table dedupstat
// and the experiment harness print: the phase-spread table, traffic and
// imbalance lines, clock spread and the straggler list.
func (cd *ClusterDump) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cluster dump: %d ranks\n\n", cd.Ranks)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %8s\n",
		"phase", "min", "median", "p95", "max", "slowest")
	for _, ps := range cd.Phases {
		if ps.Max == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %8d\n",
			ps.Name, metrics.Duration(ps.Min), metrics.Duration(ps.Median),
			metrics.Duration(ps.P95), metrics.Duration(ps.Max), ps.SlowestRank)
	}
	fmt.Fprintf(w, "\ntraffic: sent %s, recv %s, stored %s\n",
		metrics.Bytes(cd.TotalSentBytes), metrics.Bytes(cd.TotalRecvBytes),
		metrics.Bytes(cd.TotalStoredBytes))
	fmt.Fprintf(w, "imbalance (max/mean): designation %.3f, send %.3f\n",
		cd.DesignationImbalance, cd.SendImbalance)
	fmt.Fprintf(w, "clock spread: %s\n", metrics.Duration(cd.ClockSpread))
	if len(cd.Stragglers) == 0 {
		fmt.Fprintf(w, "stragglers: none (factor %.2f, floor %s)\n",
			cd.Options.StragglerFactor, metrics.Duration(cd.Options.MinExcess))
		return
	}
	fmt.Fprintf(w, "stragglers (> %.2fx median, excess >= %s):\n",
		cd.Options.StragglerFactor, metrics.Duration(cd.Options.MinExcess))
	for _, s := range cd.Stragglers {
		fmt.Fprintf(w, "  rank %d %-14s %10s vs median %s (+%s)\n",
			s.Rank, s.Phase, metrics.Duration(s.Duration),
			metrics.Duration(s.Median), metrics.Duration(s.Excess()))
	}
}
