package telemetry

import (
	"encoding/binary"
	"fmt"
	"io"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
)

// Cluster-wide view of the segment-store engines: every rank reports its
// local metrics.StoreStats after a dump (the zero value on non-segment
// engines), rank 0 reduces them. In-band like the dump and restore
// gathers — no out-of-band monitoring channel.

// storeWireVersion tags the binary layout of an encoded
// metrics.StoreStats so a mixed-version group fails loudly.
const storeWireVersion = 1

// storeWireInts is the number of int64 fields following the version
// byte (rank plus the 15 gauge/counter fields, in struct order).
const storeWireInts = 16

// EncodeStoreStats serializes one rank's store snapshot for the in-band
// gather: a version byte followed by a fixed block of big-endian int64s.
func EncodeStoreStats(s metrics.StoreStats) ([]byte, error) {
	buf := make([]byte, 0, 1+8*storeWireInts)
	buf = append(buf, storeWireVersion)
	for _, v := range []int64{
		int64(s.Rank),
		s.Segments, s.SealedSegments, s.LiveChunks, s.LiveBytes,
		s.DataBytes, s.GarbageBytes, s.Gen,
		s.Seals, s.Commits, s.Compactions, s.SegmentsCompacted,
		s.TombstonedBytes, s.ReclaimedBytes, s.CopiedBytes, s.CopiedChunks,
	} {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	return buf, nil
}

// DecodeStoreStats reverses EncodeStoreStats. Strict: the version must
// match and the encoding must be exactly the fixed block, no trailer.
func DecodeStoreStats(data []byte) (metrics.StoreStats, error) {
	var s metrics.StoreStats
	if len(data) == 0 {
		return s, fmt.Errorf("telemetry: empty store encoding")
	}
	if data[0] != storeWireVersion {
		return s, fmt.Errorf("telemetry: store wire version %d, want %d", data[0], storeWireVersion)
	}
	data = data[1:]
	if len(data) != 8*storeWireInts {
		return s, fmt.Errorf("telemetry: store encoding has %d payload bytes, want %d", len(data), 8*storeWireInts)
	}
	ints := make([]int64, storeWireInts)
	for i := range ints {
		ints[i] = int64(binary.BigEndian.Uint64(data[8*i:]))
	}
	s.Rank = int(ints[0])
	s.Segments, s.SealedSegments, s.LiveChunks, s.LiveBytes = ints[1], ints[2], ints[3], ints[4]
	s.DataBytes, s.GarbageBytes, s.Gen = ints[5], ints[6], ints[7]
	s.Seals, s.Commits, s.Compactions, s.SegmentsCompacted = ints[8], ints[9], ints[10], ints[11]
	s.TombstonedBytes, s.ReclaimedBytes, s.CopiedBytes, s.CopiedChunks = ints[12], ints[13], ints[14], ints[15]
	return s, nil
}

// ClusterStore is rank 0's reduced view of every rank's local store —
// the storage-plane sibling of ClusterDump and ClusterRestore.
type ClusterStore struct {
	// Kind discriminates the JSON encoding; always "store".
	Kind string
	// Ranks is the group size the stats were aggregated over.
	Ranks int
	// Total sums (and for Gen, maxes) every rank's snapshot.
	Total metrics.StoreStats
	// GarbageRatio is the cluster-wide tombstoned fraction of on-disk
	// payload; ReclaimRatio the cluster-wide reclaimed fraction of all
	// tombstoned bytes (1 when nothing was tombstoned).
	GarbageRatio float64
	ReclaimRatio float64
	// MaxGarbageRatio is the worst single rank's garbage fraction — the
	// node whose compactor is furthest behind.
	MaxGarbageRatio float64
	// GarbageImbalance is max/mean of per-rank garbage bytes; 0 when no
	// rank holds garbage.
	GarbageImbalance float64
	// PerRank has one snapshot per rank, indexed by rank.
	PerRank []metrics.StoreStats
}

// AggregateStore reduces per-rank store snapshots into a ClusterStore.
// Pure function shared by the in-band gather and the experiment harness;
// the slice may be in any rank order, every rank exactly once.
func AggregateStore(stats []metrics.StoreStats) (*ClusterStore, error) {
	if len(stats) == 0 {
		return nil, fmt.Errorf("telemetry: no store stats to aggregate")
	}
	cs := &ClusterStore{Kind: "store", Ranks: len(stats), PerRank: make([]metrics.StoreStats, len(stats))}
	seen := make([]bool, len(stats))
	garbage := make([]int64, len(stats))
	for i := range stats {
		s := stats[i]
		if s.Rank < 0 || s.Rank >= len(stats) {
			return nil, fmt.Errorf("telemetry: store rank %d out of range [0,%d)", s.Rank, len(stats))
		}
		if seen[s.Rank] {
			return nil, fmt.Errorf("telemetry: duplicate store stats for rank %d", s.Rank)
		}
		seen[s.Rank] = true
		cs.PerRank[s.Rank] = s
		cs.Total.Add(s)
		garbage[s.Rank] = s.GarbageBytes
		if r := s.GarbageRatio(); r > cs.MaxGarbageRatio {
			cs.MaxGarbageRatio = r
		}
	}
	cs.GarbageRatio = cs.Total.GarbageRatio()
	cs.ReclaimRatio = cs.Total.ReclaimRatio()
	cs.GarbageImbalance = imbalance(garbage)
	return cs, nil
}

// GatherClusterStore collects every rank's store snapshot at rank 0 and
// reduces them into a ClusterStore. Collective like GatherCluster: every
// rank must enter it unconditionally — ranks on non-segment engines
// report the zero snapshot — and only rank 0 receives a non-nil result.
//
//dedupvet:phased
func GatherClusterStore(c collectives.Comm, s metrics.StoreStats) (*ClusterStore, error) {
	enc, err := EncodeStoreStats(s)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d encode store: %w", c.Rank(), err)
	}
	collectives.NotePhase(c, "store-telemetry")
	raw, err := collectives.Gather(c, 0, enc)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d store gather: %w", c.Rank(), err)
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	stats := make([]metrics.StoreStats, len(raw))
	for rank, b := range raw {
		ss, err := DecodeStoreStats(b)
		if err != nil {
			return nil, fmt.Errorf("telemetry: decode store rank %d: %w", rank, err)
		}
		if ss.Rank != rank {
			return nil, fmt.Errorf("telemetry: store gather slot %d carries rank %d", rank, ss.Rank)
		}
		stats[rank] = ss
	}
	return AggregateStore(stats)
}

// WritePrometheus renders the cluster store view in Prometheus text
// exposition format, the dedupcr_cluster_store_* families.
func (cs *ClusterStore) WritePrometheus(w io.Writer) {
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gauge("dedupcr_cluster_store_ranks", "Number of ranks aggregated into the cluster store view.")
	fmt.Fprintf(w, "dedupcr_cluster_store_ranks %d\n", cs.Ranks)
	gauge("dedupcr_cluster_store_segments", "Segments across all local stores (sealed plus active).")
	fmt.Fprintf(w, "dedupcr_cluster_store_segments %d\n", cs.Total.Segments)
	gauge("dedupcr_cluster_store_live_bytes", "Live payload bytes across all local stores.")
	fmt.Fprintf(w, "dedupcr_cluster_store_live_bytes %d\n", cs.Total.LiveBytes)
	gauge("dedupcr_cluster_store_data_bytes", "On-disk payload bytes across all local stores, garbage included.")
	fmt.Fprintf(w, "dedupcr_cluster_store_data_bytes %d\n", cs.Total.DataBytes)
	gauge("dedupcr_cluster_store_garbage_bytes", "Tombstoned payload bytes awaiting compaction, cluster-wide.")
	fmt.Fprintf(w, "dedupcr_cluster_store_garbage_bytes %d\n", cs.Total.GarbageBytes)
	gauge("dedupcr_cluster_store_garbage_ratio", "Cluster-wide tombstoned fraction of on-disk payload.")
	fmt.Fprintf(w, "dedupcr_cluster_store_garbage_ratio %.6f\n", cs.GarbageRatio)
	gauge("dedupcr_cluster_store_max_garbage_ratio", "Worst single rank's garbage fraction.")
	fmt.Fprintf(w, "dedupcr_cluster_store_max_garbage_ratio %.6f\n", cs.MaxGarbageRatio)
	gauge("dedupcr_cluster_store_reclaim_ratio", "Reclaimed fraction of all tombstoned bytes, cluster-wide.")
	fmt.Fprintf(w, "dedupcr_cluster_store_reclaim_ratio %.6f\n", cs.ReclaimRatio)
	gauge("dedupcr_cluster_store_garbage_imbalance", "Max/mean of per-rank garbage bytes (1.0 = even).")
	fmt.Fprintf(w, "dedupcr_cluster_store_garbage_imbalance %.6f\n", cs.GarbageImbalance)
	gauge("dedupcr_cluster_store_compactions", "Compaction sweeps summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_store_compactions %d\n", cs.Total.Compactions)
	gauge("dedupcr_cluster_store_reclaimed_bytes", "Tombstoned bytes physically reclaimed, summed over ranks.")
	fmt.Fprintf(w, "dedupcr_cluster_store_reclaimed_bytes %d\n", cs.Total.ReclaimedBytes)
	gauge("dedupcr_cluster_store_rank_garbage_bytes", "Tombstoned payload bytes awaiting compaction on one rank.")
	for _, s := range cs.PerRank {
		fmt.Fprintf(w, "dedupcr_cluster_store_rank_garbage_bytes{rank=\"%d\"} %d\n", s.Rank, s.GarbageBytes)
	}
}

// WriteText renders the cluster store view as a compact report.
func (cs *ClusterStore) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cluster store: %d ranks, %d segments (%d sealed)\n",
		cs.Ranks, cs.Total.Segments, cs.Total.SealedSegments)
	fmt.Fprintf(w, "bytes: live %s, on-disk %s, garbage %s (%.1f%% cluster, %.1f%% worst rank)\n",
		metrics.Bytes(cs.Total.LiveBytes), metrics.Bytes(cs.Total.DataBytes),
		metrics.Bytes(cs.Total.GarbageBytes), 100*cs.GarbageRatio, 100*cs.MaxGarbageRatio)
	fmt.Fprintf(w, "lifecycle: %d seals, %d commits, %d compactions (%d segments, reclaimed %s of %s tombstoned, %.1f%%)\n",
		cs.Total.Seals, cs.Total.Commits, cs.Total.Compactions, cs.Total.SegmentsCompacted,
		metrics.Bytes(cs.Total.ReclaimedBytes), metrics.Bytes(cs.Total.TombstonedBytes), 100*cs.ReclaimRatio)
	if cs.GarbageImbalance > 0 {
		fmt.Fprintf(w, "garbage imbalance (max/mean): %.3f\n", cs.GarbageImbalance)
	}
}
