package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// telemetryWorkload builds one rank's buffer: pages drawn from a small
// shared alphabet, so ranks naturally hold duplicate content.
func telemetryWorkload(rank, pages, pageSize int) []byte {
	buf := make([]byte, pages*pageSize)
	for p := 0; p < pages; p++ {
		// A few shared page kinds plus some rank-private ones.
		kind := (rank*7 + p*3) % 5
		if p%4 == 0 {
			kind = 100 + rank // rank-private content
		}
		page := buf[p*pageSize : (p+1)*pageSize]
		for i := range page {
			page[i] = byte(kind + i*31)
		}
	}
	return buf
}

// TestClusterAcceptance is the tentpole's end-to-end check: a multi-rank
// in-process dump, the in-band gather to rank 0, and a merged Chrome
// trace with one pid per rank whose barrier alignment is consistent.
func TestClusterAcceptance(t *testing.T) {
	const n = 4
	cluster := storage.NewCluster(n)
	tr := trace.New()
	results := make([]*core.Result, n)
	var cd *ClusterDump
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		rank := c.Rank()
		opts := core.Options{
			K: 2, Approach: core.CollDedup, ChunkSize: 1024, Name: "telem",
			Trace: tr.Recorder(1, rank, fmt.Sprintf("rank %d", rank)),
		}
		res, err := core.DumpOutput(c, cluster.Node(rank), telemetryWorkload(rank, 64, 1024), opts)
		if err != nil {
			return err
		}
		mu.Lock()
		results[rank] = res
		mu.Unlock()
		got, err := GatherCluster(c, res.Metrics, Options{})
		if err != nil {
			return err
		}
		if rank == 0 {
			if got == nil {
				return fmt.Errorf("rank 0 got nil cluster dump")
			}
			cd = got
		} else if got != nil {
			return fmt.Errorf("rank %d got a cluster dump, want nil", rank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- ClusterDump content ---
	if cd.Ranks != n {
		t.Fatalf("ranks = %d, want %d", cd.Ranks, n)
	}
	total := cd.Phase("total")
	if total.Min <= 0 || total.Max < total.Min {
		t.Errorf("total spread malformed: %+v", total)
	}
	for _, ps := range cd.Phases {
		if ps.Min > ps.Median || ps.Median > ps.P95 || ps.P95 > ps.Max {
			t.Errorf("%s: min/median/p95/max not ordered: %+v", ps.Name, ps)
		}
		if ps.SlowestRank < 0 || ps.SlowestRank >= n {
			t.Errorf("%s: slowest rank %d out of range", ps.Name, ps.SlowestRank)
		}
	}
	// The gathered per-rank summaries must match what each rank measured
	// locally (wire codec + gather integrity, end to end).
	for r, res := range results {
		rs := cd.PerRank[r]
		if rs.SentBytes != res.Metrics.SentBytes || rs.StoredBytes != res.Metrics.StoredBytes {
			t.Errorf("rank %d: gathered sent/stored %d/%d, local %d/%d",
				r, rs.SentBytes, rs.StoredBytes, res.Metrics.SentBytes, res.Metrics.StoredBytes)
		}
		if rs.ClockOffset < 0 {
			t.Errorf("rank %d: negative clock offset %v", r, rs.ClockOffset)
		}
	}
	if cd.DesignationImbalance < 1 || cd.SendImbalance < 1 {
		t.Errorf("imbalance coefficients below 1: designation %f send %f",
			cd.DesignationImbalance, cd.SendImbalance)
	}
	if cd.ClockSpread < 0 || cd.ClockSpread > time.Second {
		t.Errorf("clock spread %v implausible for an in-process run", cd.ClockSpread)
	}

	// --- merged trace ---
	var buf bytes.Buffer
	if err := MergeTraces(&buf, SplitByTid(tr.Events()), cd); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := make(map[int]bool)
	barrierEnd := make(map[int]float64)
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		pids[e.Pid] = true
		if e.Name == "barrier" {
			if end := e.Ts + e.Dur; end > barrierEnd[e.Pid] {
				barrierEnd[e.Pid] = end
			}
		}
	}
	if len(pids) != n {
		t.Fatalf("merged trace has %d pids, want one per rank (%d): %v", len(pids), n, pids)
	}
	if len(barrierEnd) != n {
		t.Fatalf("barrier spans on %d pids, want %d", len(barrierEnd), n)
	}
	// Monotonically consistent alignment: every rank's completion
	// barrier ends at the same merged timestamp (µs floats, so allow
	// sub-microsecond rounding).
	ref := barrierEnd[0]
	for pid, end := range barrierEnd {
		if math.Abs(end-ref) > 0.5 {
			t.Errorf("pid %d barrier ends at %fµs, pid 0 at %fµs", pid, end, ref)
		}
	}
}
