package telemetry

import (
	"encoding/binary"
	"fmt"
	"time"

	"dedupcr/internal/metrics"
)

// dumpWireVersion tags the binary layout of an encoded metrics.Dump so a
// mixed-version group fails loudly instead of mis-decoding. Version 2
// appended PutRetries to the fixed counter block; version 3 introduced
// the restore metrics family (EncodeRestore/DecodeRestore) without
// changing the dump layout, so v2 dump encodings still decode.
const (
	dumpWireVersion   = 3
	dumpWireVersionV2 = 2
)

// EncodeDump serializes one rank's dump metrics for the in-band gather:
// a version byte, the fixed counters and phase durations as big-endian
// int64s, the variable-length duration slices with uint32 length
// prefixes, the barrier-exit wall stamp (unix nanoseconds, 0 when unset)
// and the put-latency histogram (flag byte + length-prefixed sparse
// encoding, absent when nil).
func EncodeDump(d metrics.Dump) ([]byte, error) {
	var buf []byte
	i64 := func(v int64) { buf = binary.BigEndian.AppendUint64(buf, uint64(v)) }
	durs := func(v []time.Duration) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		for _, d := range v {
			i64(int64(d))
		}
	}

	buf = append(buf, dumpWireVersion)
	i64(int64(d.Rank))
	i64(d.DatasetBytes)
	i64(int64(d.TotalChunks))
	i64(int64(d.LocalUniqueChunks))
	i64(d.HashedBytes)
	i64(int64(d.StoredChunks))
	i64(d.StoredBytes)
	i64(int64(d.SentChunks))
	i64(d.SentBytes)
	i64(int64(d.RecvChunks))
	i64(d.RecvBytes)
	i64(d.ReductionBytes)
	i64(int64(d.ReductionRounds))
	i64(d.LoadExchangeBytes)
	i64(d.WindowBytes)
	i64(d.UniqueContentBytes)
	i64(d.PutRetries)

	p := d.Phases
	for _, ph := range []time.Duration{
		p.Chunking, p.Fingerprint, p.LocalDedup, p.Reduction,
		p.LoadExchange, p.Planning, p.WindowOpen, p.Put, p.WindowWait,
		p.Commit, p.Barrier, p.Total,
	} {
		i64(int64(ph))
	}
	durs(p.ReductionRoundTimes)
	durs(p.FingerprintWorkers)
	durs(p.PutWorkers)

	if d.BarrierExit.IsZero() {
		i64(0)
	} else {
		i64(d.BarrierExit.UnixNano())
	}

	if d.PutLatency == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		hb, err := d.PutLatency.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("telemetry: encode put latency: %w", err)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
		buf = append(buf, hb...)
	}
	return buf, nil
}

// DecodeDump reverses EncodeDump.
func DecodeDump(data []byte) (metrics.Dump, error) {
	var d metrics.Dump
	if len(data) == 0 {
		return d, fmt.Errorf("telemetry: empty dump encoding")
	}
	if data[0] != dumpWireVersion && data[0] != dumpWireVersionV2 {
		return d, fmt.Errorf("telemetry: dump wire version %d, want %d or %d",
			data[0], dumpWireVersionV2, dumpWireVersion)
	}
	data = data[1:]
	fail := func() (metrics.Dump, error) {
		return metrics.Dump{}, fmt.Errorf("telemetry: truncated dump encoding")
	}
	i64 := func() (int64, bool) {
		if len(data) < 8 {
			return 0, false
		}
		v := int64(binary.BigEndian.Uint64(data))
		data = data[8:]
		return v, true
	}
	durs := func() ([]time.Duration, bool) {
		if len(data) < 4 {
			return nil, false
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if n == 0 {
			return nil, true
		}
		if len(data) < 8*n {
			return nil, false
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(binary.BigEndian.Uint64(data[8*i:]))
		}
		data = data[8*n:]
		return out, true
	}

	ints := make([]int64, 17)
	for i := range ints {
		v, ok := i64()
		if !ok {
			return fail()
		}
		ints[i] = v
	}
	d.Rank = int(ints[0])
	d.DatasetBytes = ints[1]
	d.TotalChunks = int(ints[2])
	d.LocalUniqueChunks = int(ints[3])
	d.HashedBytes = ints[4]
	d.StoredChunks = int(ints[5])
	d.StoredBytes = ints[6]
	d.SentChunks = int(ints[7])
	d.SentBytes = ints[8]
	d.RecvChunks = int(ints[9])
	d.RecvBytes = ints[10]
	d.ReductionBytes = ints[11]
	d.ReductionRounds = int(ints[12])
	d.LoadExchangeBytes = ints[13]
	d.WindowBytes = ints[14]
	d.UniqueContentBytes = ints[15]
	d.PutRetries = ints[16]

	phases := make([]time.Duration, 12)
	for i := range phases {
		v, ok := i64()
		if !ok {
			return fail()
		}
		phases[i] = time.Duration(v)
	}
	p := &d.Phases
	p.Chunking, p.Fingerprint, p.LocalDedup, p.Reduction = phases[0], phases[1], phases[2], phases[3]
	p.LoadExchange, p.Planning, p.WindowOpen, p.Put = phases[4], phases[5], phases[6], phases[7]
	p.WindowWait, p.Commit, p.Barrier, p.Total = phases[8], phases[9], phases[10], phases[11]

	var ok bool
	if p.ReductionRoundTimes, ok = durs(); !ok {
		return fail()
	}
	if p.FingerprintWorkers, ok = durs(); !ok {
		return fail()
	}
	if p.PutWorkers, ok = durs(); !ok {
		return fail()
	}

	exit, ok := i64()
	if !ok {
		return fail()
	}
	if exit != 0 {
		d.BarrierExit = time.Unix(0, exit)
	}

	if len(data) < 1 {
		return fail()
	}
	flag := data[0]
	data = data[1:]
	switch flag {
	case 0:
	case 1:
		if len(data) < 4 {
			return fail()
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if len(data) < n {
			return fail()
		}
		h := metrics.NewHistogram()
		if err := h.UnmarshalBinary(data[:n]); err != nil {
			return metrics.Dump{}, fmt.Errorf("telemetry: decode put latency: %w", err)
		}
		d.PutLatency = h
		data = data[n:]
	default:
		return metrics.Dump{}, fmt.Errorf("telemetry: bad put-latency flag %d", flag)
	}
	if len(data) != 0 {
		return metrics.Dump{}, fmt.Errorf("telemetry: %d trailing bytes after dump encoding", len(data))
	}
	return d, nil
}
