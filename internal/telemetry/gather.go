package telemetry

import (
	"fmt"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
)

// GatherCluster collects every rank's dump metrics at rank 0 over the
// group's own communicator and reduces them into a ClusterDump. It is a
// collective call: every rank must enter it with its own dump (SPMD,
// like the dump itself), and only rank 0 receives a non-nil result. The
// gather rides the same transport as the dump — no out-of-band
// monitoring channel, matching the paper's in-band measurement setup.
//
// The gather runs after the pipeline's completion barrier, outside any
// dump/restore phase; a failure here is attributed to the telemetry
// plane by its own error wrapping, not to a pipeline phase.
//
//dedupvet:phased
func GatherCluster(c collectives.Comm, d metrics.Dump, opts Options) (*ClusterDump, error) {
	enc, err := EncodeDump(d)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d encode: %w", c.Rank(), err)
	}
	raw, err := collectives.Gather(c, 0, enc)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d gather: %w", c.Rank(), err)
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	dumps := make([]metrics.Dump, len(raw))
	for r, b := range raw {
		dd, err := DecodeDump(b)
		if err != nil {
			return nil, fmt.Errorf("telemetry: decode rank %d: %w", r, err)
		}
		if dd.Rank != r {
			return nil, fmt.Errorf("telemetry: gather slot %d carries rank %d", r, dd.Rank)
		}
		dumps[r] = dd
	}
	cd, err := Aggregate(dumps, opts)
	if err != nil {
		return nil, err
	}
	// Straggler flags go into the flight recorder on the aggregating
	// rank: a rank that is repeatedly flagged before a failure is
	// exactly what a post-mortem timeline should show.
	for _, st := range cd.Stragglers {
		obs.Logf(obs.KindStraggler, st.Rank, st.Phase, 0,
			"straggler: %s vs median %s", st.Duration, st.Median)
	}
	return cd, nil
}
