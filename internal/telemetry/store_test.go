package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
)

// storeStatsFixture builds one rank's distinct, fully populated snapshot.
func storeStatsFixture(rank int) metrics.StoreStats {
	r := int64(rank + 1)
	return metrics.StoreStats{
		Rank:     rank,
		Segments: 4 * r, SealedSegments: 3 * r, LiveChunks: 100 * r, LiveBytes: 4096 * r,
		DataBytes: 5000 * r, GarbageBytes: 904 * r, Gen: 2 * r,
		Seals: 3 * r, Commits: 2 * r, Compactions: r, SegmentsCompacted: r,
		TombstonedBytes: 2000 * r, ReclaimedBytes: 1096 * r, CopiedBytes: 512 * r, CopiedChunks: 8 * r,
	}
}

func TestStoreWireRoundTrip(t *testing.T) {
	in := storeStatsFixture(3)
	enc, err := EncodeStoreStats(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStoreStats(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// Encoding is deterministic: same snapshot, same bytes.
	enc2, _ := EncodeStoreStats(in)
	if !bytes.Equal(enc, enc2) {
		t.Fatal("store encoding not deterministic")
	}
}

func TestStoreWireRejects(t *testing.T) {
	enc, err := EncodeStoreStats(storeStatsFixture(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStoreStats(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeStoreStats(append([]byte{99}, enc[1:]...)); err == nil {
		t.Error("wrong version accepted")
	}
	for _, cut := range []int{1, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeStoreStats(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeStoreStats(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestAggregateStore(t *testing.T) {
	// Rank order must not matter; rank 1 runs a non-segment engine and
	// reports the zero snapshot (only Rank set), as the gather contract
	// allows in mixed-engine groups.
	stats := []metrics.StoreStats{
		storeStatsFixture(2),
		{Rank: 1},
		storeStatsFixture(0),
	}
	cs, err := AggregateStore(stats)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kind != "store" || cs.Ranks != 3 {
		t.Fatalf("kind/ranks = %q/%d", cs.Kind, cs.Ranks)
	}
	// Sums over ranks 0 and 2 (multipliers 1 and 3 → ×4); Gen is a max.
	if cs.Total.Segments != 16 || cs.Total.GarbageBytes != 3616 || cs.Total.ReclaimedBytes != 4384 {
		t.Fatalf("totals: %+v", cs.Total)
	}
	if cs.Total.Gen != 6 {
		t.Fatalf("Gen = %d, want max 6", cs.Total.Gen)
	}
	if cs.PerRank[2] != storeStatsFixture(2) || cs.PerRank[1].Segments != 0 {
		t.Fatalf("per-rank slots misfiled: %+v", cs.PerRank)
	}
	wantGarbage := float64(3616) / float64(20000)
	if diff := cs.GarbageRatio - wantGarbage; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("GarbageRatio = %v, want %v", cs.GarbageRatio, wantGarbage)
	}
	// Every segment-engine rank has the same per-rank garbage fraction
	// here, so the max equals any one of them.
	if diff := cs.MaxGarbageRatio - 904.0/5000.0; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MaxGarbageRatio = %v", cs.MaxGarbageRatio)
	}
	if cs.GarbageImbalance <= 1 {
		t.Fatalf("GarbageImbalance = %v, want > 1 (rank 1 holds none)", cs.GarbageImbalance)
	}

	if _, err := AggregateStore(nil); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := AggregateStore([]metrics.StoreStats{{Rank: 0}, {Rank: 0}}); err == nil {
		t.Error("duplicate rank accepted")
	}
	if _, err := AggregateStore([]metrics.StoreStats{{Rank: 5}}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestGatherClusterStore runs the in-band collective over a real group:
// every rank enters unconditionally, only rank 0 gets the reduction.
func TestGatherClusterStore(t *testing.T) {
	const n = 4
	err := collectives.Run(n, func(c collectives.Comm) error {
		s := storeStatsFixture(c.Rank())
		if c.Rank() == 2 {
			s = metrics.StoreStats{Rank: 2} // non-segment engine
		}
		cs, err := GatherClusterStore(c, s)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if cs != nil {
				return fmt.Errorf("rank %d got a cluster store, want nil", c.Rank())
			}
			return nil
		}
		if cs == nil {
			return fmt.Errorf("rank 0 got nil cluster store")
		}
		if cs.Ranks != n || len(cs.PerRank) != n {
			return fmt.Errorf("ranks = %d/%d", cs.Ranks, len(cs.PerRank))
		}
		// Multipliers 1, 2, 4 (rank 2 zeroed) → Segments 4+8+16 = 28.
		if cs.Total.Segments != 28 {
			return fmt.Errorf("total segments = %d, want 28", cs.Total.Segments)
		}
		if cs.PerRank[3] != storeStatsFixture(3) || cs.PerRank[2].LiveBytes != 0 {
			return fmt.Errorf("per-rank slots misfiled: %+v", cs.PerRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterStoreExpositionWellFormed runs the strict checker over the
// dedupcr_cluster_store_* families and the text report.
func TestClusterStoreExpositionWellFormed(t *testing.T) {
	cs, err := AggregateStore([]metrics.StoreStats{
		storeStatsFixture(0), storeStatsFixture(1), {Rank: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cs.WritePrometheus(&buf)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("cluster store exposition malformed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dedupcr_cluster_store_ranks 3",
		"dedupcr_cluster_store_segments 12",
		"dedupcr_cluster_store_garbage_ratio",
		"dedupcr_cluster_store_reclaim_ratio",
		`dedupcr_cluster_store_rank_garbage_bytes{rank="1"} 1808`,
		`dedupcr_cluster_store_rank_garbage_bytes{rank="2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	cs.WriteText(&buf)
	for _, want := range []string{"cluster store: 3 ranks", "garbage imbalance"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}
