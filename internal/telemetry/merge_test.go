package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dedupcr/internal/trace"
)

// rankEvents fabricates one rank's dump timeline on a clock skewed by
// skew: a put span, the completion barrier and an enclosing dump span.
func rankEvents(rank int, skew time.Duration) []trace.Event {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	return []trace.Event{
		{Name: "dump", Pid: 1, Tid: rank, Start: skew, Dur: ms(100)},
		{Name: "put", Pid: 1, Tid: rank, Start: skew + ms(10), Dur: ms(50)},
		{Name: "barrier", Pid: 1, Tid: rank, Start: skew + ms(90), Dur: ms(10)},
	}
}

func TestAlignShiftsBarriersTogether(t *testing.T) {
	ranks := []RankTrace{
		{Rank: 0, Events: rankEvents(0, 0)},
		{Rank: 1, Events: rankEvents(1, 7*time.Millisecond)},
		{Rank: 2, Events: rankEvents(2, 3*time.Millisecond)},
	}
	aligned, offsets := Align(ranks)
	if offsets[1] != 0 {
		t.Errorf("latest rank shifted by %v, want 0", offsets[1])
	}
	if offsets[0] != 7*time.Millisecond || offsets[2] != 4*time.Millisecond {
		t.Errorf("offsets = %v", offsets)
	}
	var ends []time.Duration
	for _, rt := range aligned {
		end, ok := anchor(rt.Events)
		if !ok {
			t.Fatalf("rank %d lost its events", rt.Rank)
		}
		ends = append(ends, end)
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] != ends[0] {
			t.Fatalf("aligned barrier ends diverge: %v", ends)
		}
	}
	// Pid rewritten to the rank; relative structure preserved.
	for _, rt := range aligned {
		for _, e := range rt.Events {
			if e.Pid != rt.Rank {
				t.Errorf("rank %d event kept pid %d", rt.Rank, e.Pid)
			}
		}
		if d := rt.Events[1].Start - rt.Events[0].Start; d != 10*time.Millisecond {
			t.Errorf("rank %d intra-rank spacing changed: %v", rt.Rank, d)
		}
	}
	// Input untouched.
	if ranks[0].Events[0].Pid != 1 || ranks[0].Events[0].Start != 0 {
		t.Error("Align modified its input")
	}
}

func TestAlignFallsBackWithoutBarrier(t *testing.T) {
	ranks := []RankTrace{
		{Rank: 0, Events: []trace.Event{{Name: "put", Tid: 0, Start: 0, Dur: time.Millisecond}}},
		{Rank: 1, Events: []trace.Event{{Name: "put", Tid: 1, Start: 0, Dur: 5 * time.Millisecond}}},
		{Rank: 2}, // no events at all
	}
	aligned, offsets := Align(ranks)
	if offsets[0] != 4*time.Millisecond || offsets[1] != 0 || offsets[2] != 0 {
		t.Errorf("fallback offsets = %v", offsets)
	}
	if len(aligned[2].Events) != 0 {
		t.Errorf("empty rank grew events: %+v", aligned[2].Events)
	}
}

// chromeDoc mirrors the trace-event JSON for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func TestMergeTracesOnePidPerRankWithStragglerMarkers(t *testing.T) {
	ranks := []RankTrace{
		{Rank: 0, Events: rankEvents(0, 0)},
		{Rank: 1, Events: rankEvents(1, 5*time.Millisecond)},
	}
	cd := &ClusterDump{
		Ranks: 2,
		Stragglers: []Straggler{
			{Rank: 1, Phase: "put", Duration: 50 * time.Millisecond, Median: 20 * time.Millisecond},
		},
	}
	var buf bytes.Buffer
	if err := MergeTraces(&buf, ranks, cd); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	pids := make(map[int]bool)
	names := make(map[int]string)
	var stragglerMarks int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				names[e.Pid] = e.Args["name"]
			}
			continue
		}
		pids[e.Pid] = true
		if e.Name == "straggler put" {
			stragglerMarks++
			if e.Ph != "i" || e.Pid != 1 {
				t.Errorf("straggler marker malformed: %+v", e)
			}
			if e.Args["excess"] != "30ms" {
				t.Errorf("straggler marker args: %v", e.Args)
			}
		}
	}
	if len(pids) != 2 || !pids[0] || !pids[1] {
		t.Fatalf("merged trace pids = %v, want exactly {0,1}", pids)
	}
	if names[0] != "rank 0" || names[1] != "rank 1" {
		t.Errorf("process names = %v", names)
	}
	if stragglerMarks != 1 {
		t.Errorf("straggler markers = %d, want 1", stragglerMarks)
	}
}

func TestSplitByTid(t *testing.T) {
	evs := []trace.Event{
		{Name: "a", Tid: 0, Start: 0, Dur: 1},
		{Name: "b", Tid: 2, Start: 1, Dur: 1},
		{Name: "c", Tid: 0, Start: 2, Dur: 1},
	}
	ranks := SplitByTid(evs)
	if len(ranks) != 3 {
		t.Fatalf("got %d ranks, want 3 (tid 1 empty but present)", len(ranks))
	}
	if len(ranks[0].Events) != 2 || len(ranks[1].Events) != 0 || len(ranks[2].Events) != 1 {
		t.Errorf("split sizes: %d/%d/%d", len(ranks[0].Events), len(ranks[1].Events), len(ranks[2].Events))
	}
	if ranks[2].Rank != 2 {
		t.Errorf("rank field = %d, want 2", ranks[2].Rank)
	}
}

// TestMergeTracesFlowPruning checks the causal-edge hygiene of the merged
// trace: matched wire send/receive pairs keep their flow linkage across
// ranks, while a send whose receive never made it into the gathered
// traces is stripped of its flow id (no dangling arrows).
func TestMergeTracesFlowPruning(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ranks := []RankTrace{
		{Rank: 0, Events: []trace.Event{
			{Name: "barrier", Tid: 0, Start: ms(90), Dur: ms(10)},
			{Name: "wire-send", Tid: 0, Start: ms(10), FlowID: 0x11, FlowOp: trace.FlowStart},
			{Name: "wire-send", Tid: 0, Start: ms(20), FlowID: 0x22, FlowOp: trace.FlowStart},
		}},
		{Rank: 1, Events: []trace.Event{
			{Name: "barrier", Tid: 0, Start: ms(90), Dur: ms(10)},
			// Only flow 0x11 has its receive side; 0x22's receiver died.
			{Name: "wire-recv", Tid: 0, Start: ms(15), FlowID: 0x11, FlowOp: trace.FlowFinish},
		}},
	}
	var buf bytes.Buffer
	if err := MergeTraces(&buf, ranks, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var starts, finishes []string
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			starts = append(starts, e.ID)
		case "f":
			finishes = append(finishes, e.ID)
		}
	}
	if len(starts) != 1 || starts[0] != "0x11" {
		t.Fatalf("flow starts = %v, want exactly [0x11] (0x22 is unmatched)", starts)
	}
	if len(finishes) != 1 || finishes[0] != "0x11" {
		t.Fatalf("flow finishes = %v, want exactly [0x11]", finishes)
	}
}
