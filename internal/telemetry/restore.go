package telemetry

import (
	"fmt"
	"io"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
)

// HistSummary is the JSON-friendly reduction of one merged histogram:
// ClusterRestore travels as JSON (replicad endpoints, dumpbench cluster
// files) and metrics.Histogram does not marshal, so the cluster view
// carries nearest-bucket quantiles instead of raw buckets.
type HistSummary struct {
	Count int64
	Mean  float64
	P50   int64
	P90   int64
	P99   int64
	Max   int64
}

func summarize(h *metrics.Histogram) HistSummary {
	if h.Count() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// RestoreRankSummary is one rank's line in the cluster restore view.
type RestoreRankSummary struct {
	Rank int
	// LogicalBytes is the size of the image the rank reassembled.
	LogicalBytes int64
	// LocalBytes / FetchedBytes split the rank's read volume into local
	// store reads and peer fetches.
	LocalBytes   int64
	FetchedBytes int64
	// FetchedChunks counts chunks pulled from peers.
	FetchedChunks int
	// SourceRanks is how many distinct peers served this rank.
	SourceRanks int
	// ObjectsTouched counts distinct local store objects read.
	ObjectsTouched int
	// ReadAmpBytes is the rank's byte read amplification.
	ReadAmpBytes float64
	// LargestRun is the rank's longest same-source sequential run.
	LargestRun int64
	// Total is the rank's end-to-end restore time.
	Total time.Duration
	// ClockOffset estimates the rank's wall-clock lag behind the group's
	// latest barrier-exit stamp (see RankSummary.ClockOffset).
	ClockOffset time.Duration
}

// ClusterRestore is rank 0's reduced view of one collective restore
// across the whole group — the read-side twin of ClusterDump.
type ClusterRestore struct {
	// Kind discriminates the JSON encoding from ClusterDump's (their
	// field sets overlap enough to cross-decode); always "restore".
	Kind string
	// Ranks is the group size the restore was aggregated over.
	Ranks int
	// Phases holds one spread entry per restore phase (in
	// metrics.RestorePhaseNames order) plus a final "total" entry.
	Phases []PhaseStat
	// TotalLogicalBytes / TotalLocalBytes / TotalFetchedBytes sum image
	// sizes and read volumes over ranks.
	TotalLogicalBytes int64
	TotalLocalBytes   int64
	TotalFetchedBytes int64
	// TotalFetchedChunks / TotalRecoveredChunks sum peer-fetched and
	// erasure-rebuilt chunks over ranks.
	TotalFetchedChunks   int64
	TotalRecoveredChunks int64
	// TotalFetchRequests / TotalFetchMisses sum fetch RPCs over ranks; a
	// high miss share means the hint paths were stale and restores swept.
	TotalFetchRequests int64
	TotalFetchMisses   int64
	// TotalObjectsTouched sums distinct local objects read over ranks.
	TotalObjectsTouched int64
	// ReadAmplificationBytes is the cluster-wide byte read amplification:
	// bytes fetched over the network over logical image bytes (0 = fully
	// local restores, 1.0 = every byte travelled).
	ReadAmplificationBytes float64
	// ReadAmplificationChunks is chunks fetched over unique chunks,
	// cluster-wide.
	ReadAmplificationChunks float64
	// FetchImbalance is max/mean of per-rank fetched bytes (how unevenly
	// the fetch cost fell on restoring ranks); 0 when nothing was fetched.
	FetchImbalance float64
	// ServeImbalance is max/mean of per-peer served bytes (column sums of
	// the fetch matrix): how unevenly the serving load fell on the ranks
	// holding designated chunks.
	ServeImbalance float64
	// MaxSourceRanks is the largest per-rank distinct-source count.
	MaxSourceRanks int
	// FetchMatrix[r][p] is how many bytes rank r fetched from peer p.
	// Row sums are per-rank fetch volumes, column sums per-peer serve
	// volumes. nil when no rank reported a matrix row.
	FetchMatrix [][]int64
	// RunLengths summarizes the merged same-source run-length histogram
	// (in chunks); RunLengthDist is its per-bucket count over
	// metrics.RunLengthBuckets with a final +Inf bucket, so reports can
	// plot the locality distribution without the raw histogram.
	RunLengths    HistSummary
	RunLengthDist []int64
	// FetchLatency / StoreReadLatency summarize the merged per-RPC fetch
	// and local store read latency histograms (nanoseconds).
	FetchLatency     HistSummary
	StoreReadLatency HistSummary
	// PerRank has one summary per rank, indexed by rank.
	PerRank []RestoreRankSummary
	// Stragglers lists every flagged (rank, phase) pair, ordered by
	// phase pipeline position then rank.
	Stragglers []Straggler
	// ClockSpread is the width of the barrier-exit stamp window.
	ClockSpread time.Duration
	// Options echoes the straggler thresholds.
	Options Options
}

// AggregateRestore reduces per-rank restore metrics into a
// ClusterRestore. Like Aggregate it is a pure function shared by the
// in-band gather and the experiment harness; the slice may be in any
// rank order and every rank must appear exactly once.
func AggregateRestore(rs []metrics.Restore, opts Options) (*ClusterRestore, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("telemetry: no restores to aggregate")
	}
	opts = opts.normalized()
	byRank := make([]*metrics.Restore, len(rs))
	for i := range rs {
		r := &rs[i]
		if r.Rank < 0 || r.Rank >= len(rs) {
			return nil, fmt.Errorf("telemetry: restore rank %d out of range [0,%d)", r.Rank, len(rs))
		}
		if byRank[r.Rank] != nil {
			return nil, fmt.Errorf("telemetry: duplicate restore for rank %d", r.Rank)
		}
		byRank[r.Rank] = r
	}

	cr := &ClusterRestore{Kind: "restore", Ranks: len(rs), Options: opts}

	var ref time.Time
	for _, r := range byRank {
		if r.BarrierExit.After(ref) {
			ref = r.BarrierExit
		}
	}
	var earliest time.Time
	var totalUnique int64
	runLengths := metrics.NewHistogram()
	fetchLatency := metrics.NewHistogram()
	storeRead := metrics.NewHistogram()
	var haveMatrix bool
	cr.PerRank = make([]RestoreRankSummary, len(byRank))
	for rank, r := range byRank {
		rrs := RestoreRankSummary{
			Rank: rank, LogicalBytes: r.LogicalBytes,
			LocalBytes: r.LocalBytes, FetchedBytes: r.FetchedBytes,
			FetchedChunks: r.FetchedChunks, SourceRanks: r.SourceRanks,
			ObjectsTouched: r.ObjectsTouched,
			ReadAmpBytes:   r.ReadAmplificationBytes(),
			LargestRun:     r.LargestRun, Total: r.Phases.Total,
		}
		if !r.BarrierExit.IsZero() {
			rrs.ClockOffset = ref.Sub(r.BarrierExit)
			if earliest.IsZero() || r.BarrierExit.Before(earliest) {
				earliest = r.BarrierExit
			}
		}
		cr.PerRank[rank] = rrs
		cr.TotalLogicalBytes += r.LogicalBytes
		cr.TotalLocalBytes += r.LocalBytes
		cr.TotalFetchedBytes += r.FetchedBytes
		cr.TotalFetchedChunks += int64(r.FetchedChunks)
		cr.TotalRecoveredChunks += int64(r.RecoveredChunks)
		cr.TotalFetchRequests += r.FetchRequests
		cr.TotalFetchMisses += r.FetchMisses
		cr.TotalObjectsTouched += int64(r.ObjectsTouched)
		totalUnique += int64(r.UniqueChunks)
		if r.SourceRanks > cr.MaxSourceRanks {
			cr.MaxSourceRanks = r.SourceRanks
		}
		runLengths.Merge(r.RunLengths)
		fetchLatency.Merge(r.FetchLatency)
		storeRead.Merge(r.StoreReadLatency)
		if len(r.PeerFetchBytes) > 0 {
			haveMatrix = true
		}
	}
	if !earliest.IsZero() {
		cr.ClockSpread = ref.Sub(earliest)
	}
	if cr.TotalLogicalBytes > 0 {
		cr.ReadAmplificationBytes = float64(cr.TotalFetchedBytes) / float64(cr.TotalLogicalBytes)
	}
	if totalUnique > 0 {
		cr.ReadAmplificationChunks = float64(cr.TotalFetchedChunks) / float64(totalUnique)
	}

	fetched := make([]int64, len(byRank))
	served := make([]int64, len(byRank))
	if haveMatrix {
		cr.FetchMatrix = make([][]int64, len(byRank))
	}
	for rank, r := range byRank {
		fetched[rank] = r.FetchedBytes
		if haveMatrix {
			row := make([]int64, len(byRank))
			copy(row, r.PeerFetchBytes)
			cr.FetchMatrix[rank] = row
			for peer, b := range row {
				served[peer] += b
			}
		}
	}
	cr.FetchImbalance = imbalance(fetched)
	cr.ServeImbalance = imbalance(served)

	cr.RunLengths = summarize(runLengths)
	cr.FetchLatency = summarize(fetchLatency)
	cr.StoreReadLatency = summarize(storeRead)
	if runLengths.Count() > 0 {
		// Per-bucket counts from the cumulative CountLE curve.
		cr.RunLengthDist = make([]int64, len(metrics.RunLengthBuckets)+1)
		var prev int64
		for i, le := range metrics.RunLengthBuckets {
			c := runLengths.CountLE(le)
			cr.RunLengthDist[i] = c - prev
			prev = c
		}
		cr.RunLengthDist[len(metrics.RunLengthBuckets)] = runLengths.Count() - prev
	}

	names := append(append([]string(nil), metrics.RestorePhaseNames...), "total")
	for _, name := range names {
		durs := make([]int64, len(byRank))
		for rank, r := range byRank {
			if name == "total" {
				durs[rank] = int64(r.Phases.Total)
			} else {
				durs[rank] = int64(r.Phases.ByName(name))
			}
		}
		ps := PhaseStat{
			Name:   name,
			Min:    time.Duration(metrics.Quantile(durs, 0)),
			Median: time.Duration(metrics.Quantile(durs, 0.5)),
			P95:    time.Duration(metrics.Quantile(durs, 0.95)),
			Max:    time.Duration(metrics.Max(durs)),
			Mean:   time.Duration(metrics.Avg(durs)),
		}
		for rank, v := range durs {
			if time.Duration(v) == ps.Max {
				ps.SlowestRank = rank
				break
			}
		}
		cr.Phases = append(cr.Phases, ps)

		// Straggler rule: duration > factor x median AND excess >= floor.
		// "fetch" is contained in "assemble" and would double-flag.
		if name == "total" || name == "fetch" || opts.StragglerFactor < 0 {
			continue
		}
		median := time.Duration(metrics.Quantile(durs, 0.5))
		for rank, v := range durs {
			d := time.Duration(v)
			if float64(d) > opts.StragglerFactor*float64(median) && d-median >= opts.MinExcess {
				cr.Stragglers = append(cr.Stragglers, Straggler{
					Rank: rank, Phase: name, Duration: d, Median: median,
				})
			}
		}
	}
	return cr, nil
}

// GatherClusterRestore collects every rank's restore metrics at rank 0
// over the group's own communicator and reduces them into a
// ClusterRestore. Like GatherCluster it is a collective call: every rank
// enters with its own metrics, only rank 0 receives a non-nil result,
// and the gather rides the group's own transport.
func GatherClusterRestore(c collectives.Comm, r metrics.Restore, opts Options) (*ClusterRestore, error) {
	enc, err := EncodeRestore(r)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d encode restore: %w", c.Rank(), err)
	}
	// The gather runs after the restore's completion barrier; failures
	// here belong to the telemetry plane, not a restore phase.
	collectives.NotePhase(c, "restore-telemetry")
	raw, err := collectives.Gather(c, 0, enc)
	if err != nil {
		return nil, fmt.Errorf("telemetry: rank %d restore gather: %w", c.Rank(), err)
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	rs := make([]metrics.Restore, len(raw))
	for rank, b := range raw {
		rr, err := DecodeRestore(b)
		if err != nil {
			return nil, fmt.Errorf("telemetry: decode restore rank %d: %w", rank, err)
		}
		if rr.Rank != rank {
			return nil, fmt.Errorf("telemetry: restore gather slot %d carries rank %d", rank, rr.Rank)
		}
		rs[rank] = rr
	}
	return AggregateRestore(rs, opts)
}

// StragglersFor returns the flagged stragglers of one rank, in phase
// order.
func (cr *ClusterRestore) StragglersFor(rank int) []Straggler {
	var out []Straggler
	for _, s := range cr.Stragglers {
		if s.Rank == rank {
			out = append(out, s)
		}
	}
	return out
}

// Phase returns the spread entry for the named phase, or a zero
// PhaseStat when absent.
func (cr *ClusterRestore) Phase(name string) PhaseStat {
	for _, ps := range cr.Phases {
		if ps.Name == name {
			return ps
		}
	}
	return PhaseStat{}
}

// WriteText renders the cluster restore as the fixed-width table
// dedupstat and the experiment harness print: phase spreads, read
// volumes and amplification, fragmentation/locality statistics and the
// straggler list.
func (cr *ClusterRestore) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cluster restore: %d ranks\n\n", cr.Ranks)
	fmt.Fprintf(w, "%-15s %10s %10s %10s %10s %8s\n",
		"phase", "min", "median", "p95", "max", "slowest")
	for _, ps := range cr.Phases {
		if ps.Max == 0 {
			continue
		}
		fmt.Fprintf(w, "%-15s %10s %10s %10s %10s %8d\n",
			ps.Name, metrics.Duration(ps.Min), metrics.Duration(ps.Median),
			metrics.Duration(ps.P95), metrics.Duration(ps.Max), ps.SlowestRank)
	}
	fmt.Fprintf(w, "\nread volume: logical %s, local %s, fetched %s (%d chunks",
		metrics.Bytes(cr.TotalLogicalBytes), metrics.Bytes(cr.TotalLocalBytes),
		metrics.Bytes(cr.TotalFetchedBytes), cr.TotalFetchedChunks)
	if cr.TotalRecoveredChunks > 0 {
		fmt.Fprintf(w, ", %d rebuilt", cr.TotalRecoveredChunks)
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "read amplification: %.3fx bytes, %.3fx chunks\n",
		cr.ReadAmplificationBytes, cr.ReadAmplificationChunks)
	if cr.TotalFetchRequests > 0 {
		fmt.Fprintf(w, "fetch RPCs: %d (%d misses); imbalance (max/mean): fetch %.3f, serve %.3f\n",
			cr.TotalFetchRequests, cr.TotalFetchMisses, cr.FetchImbalance, cr.ServeImbalance)
	}
	fmt.Fprintf(w, "locality: objects touched %d, max sources/rank %d", cr.TotalObjectsTouched, cr.MaxSourceRanks)
	if cr.RunLengths.Count > 0 {
		fmt.Fprintf(w, "; runs p50 %d / p99 %d / max %d chunks", cr.RunLengths.P50, cr.RunLengths.P99, cr.RunLengths.Max)
	}
	fmt.Fprintf(w, "\n")
	if cr.RunLengths.Count > 0 {
		fmt.Fprintf(w, "run lengths (chunks):")
		for i, n := range cr.RunLengthDist {
			if n == 0 {
				continue
			}
			if i < len(metrics.RunLengthBuckets) {
				fmt.Fprintf(w, " <=%d:%d", metrics.RunLengthBuckets[i], n)
			} else {
				fmt.Fprintf(w, " >%d:%d", metrics.RunLengthBuckets[len(metrics.RunLengthBuckets)-1], n)
			}
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "clock spread: %s\n", metrics.Duration(cr.ClockSpread))
	if len(cr.Stragglers) == 0 {
		fmt.Fprintf(w, "stragglers: none (factor %.2f, floor %s)\n",
			cr.Options.StragglerFactor, metrics.Duration(cr.Options.MinExcess))
		return
	}
	fmt.Fprintf(w, "stragglers (> %.2fx median, excess >= %s):\n",
		cr.Options.StragglerFactor, metrics.Duration(cr.Options.MinExcess))
	for _, s := range cr.Stragglers {
		fmt.Fprintf(w, "  rank %d %-15s %10s vs median %s (+%s)\n",
			s.Rank, s.Phase, metrics.Duration(s.Duration),
			metrics.Duration(s.Median), metrics.Duration(s.Excess()))
	}
}
