package telemetry

import (
	"strings"
	"testing"
	"time"

	"dedupcr/internal/metrics"
)

// clusterDumps builds n per-rank dumps with a linear put-time ramp and
// rank-proportional traffic, anchored to a common barrier-exit base with
// per-rank skew.
func clusterDumps(n int) []metrics.Dump {
	base := time.Unix(1700000000, 0)
	dumps := make([]metrics.Dump, n)
	for r := range dumps {
		dumps[r] = metrics.Dump{
			Rank:        r,
			SentBytes:   int64(1000 * (r + 1)),
			RecvBytes:   int64(900 * (r + 1)),
			StoredBytes: int64(2000 * (r + 1)),
			Phases: metrics.Phases{
				Chunking: time.Millisecond,
				Put:      time.Duration(r+1) * 10 * time.Millisecond,
				Barrier:  time.Millisecond,
				Total:    time.Duration(r+1) * 12 * time.Millisecond,
			},
			BarrierExit: base.Add(time.Duration(r) * time.Microsecond),
		}
	}
	return dumps
}

func TestAggregateSpreadAndImbalance(t *testing.T) {
	const n = 8
	cd, err := Aggregate(clusterDumps(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cd.Ranks != n {
		t.Fatalf("ranks = %d, want %d", cd.Ranks, n)
	}

	put := cd.Phase("put")
	if put.Min != 10*time.Millisecond || put.Max != 80*time.Millisecond {
		t.Errorf("put min/max = %v/%v, want 10ms/80ms", put.Min, put.Max)
	}
	if put.Median != 40*time.Millisecond { // nearest-rank of 10..80ms
		t.Errorf("put median = %v, want 40ms", put.Median)
	}
	if put.P95 != 80*time.Millisecond {
		t.Errorf("put p95 = %v, want 80ms", put.P95)
	}
	if put.SlowestRank != n-1 {
		t.Errorf("put slowest rank = %d, want %d", put.SlowestRank, n-1)
	}
	for _, ps := range cd.Phases {
		if ps.Min > ps.Median || ps.Median > ps.P95 || ps.P95 > ps.Max {
			t.Errorf("%s: quantiles not ordered: %+v", ps.Name, ps)
		}
	}
	if cd.Phases[len(cd.Phases)-1].Name != "total" {
		t.Errorf("last phase entry is %q, want total", cd.Phases[len(cd.Phases)-1].Name)
	}

	// Sent bytes ramp 1000..8000: sum 36000, max 8000, mean 4500.
	if cd.TotalSentBytes != 36000 {
		t.Errorf("total sent = %d, want 36000", cd.TotalSentBytes)
	}
	wantImb := 8000.0 / 4500.0
	if diff := cd.SendImbalance - wantImb; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("send imbalance = %f, want %f", cd.SendImbalance, wantImb)
	}
	if cd.DesignationImbalance <= 1 {
		t.Errorf("designation imbalance = %f, want > 1 for skewed load", cd.DesignationImbalance)
	}

	// Rank n-1 carries the latest stamp: offset 0; rank 0 lags by
	// (n-1)µs; spread is the full window.
	if cd.PerRank[n-1].ClockOffset != 0 {
		t.Errorf("latest rank offset = %v, want 0", cd.PerRank[n-1].ClockOffset)
	}
	if cd.PerRank[0].ClockOffset != time.Duration(n-1)*time.Microsecond {
		t.Errorf("rank 0 offset = %v, want %dµs", cd.PerRank[0].ClockOffset, n-1)
	}
	if cd.ClockSpread != time.Duration(n-1)*time.Microsecond {
		t.Errorf("clock spread = %v", cd.ClockSpread)
	}
}

// TestAggregateFlagsInjectedStraggler is the acceptance check: a rank
// whose put phase is blown far past the cluster median must come back
// flagged, and only that rank.
func TestAggregateFlagsInjectedStraggler(t *testing.T) {
	const n = 8
	dumps := make([]metrics.Dump, n)
	for r := range dumps {
		dumps[r] = metrics.Dump{
			Rank: r,
			Phases: metrics.Phases{
				Put:     10 * time.Millisecond,
				Commit:  2 * time.Millisecond,
				Total:   15 * time.Millisecond,
				Barrier: time.Millisecond,
			},
		}
	}
	// Inject: rank 5 takes 5x the median put time.
	dumps[5].Phases.Put = 50 * time.Millisecond
	dumps[5].Phases.Total = 55 * time.Millisecond

	cd, err := Aggregate(dumps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want exactly the injected one", cd.Stragglers)
	}
	s := cd.Stragglers[0]
	if s.Rank != 5 || s.Phase != "put" {
		t.Fatalf("flagged rank %d phase %q, want rank 5 put", s.Rank, s.Phase)
	}
	if s.Median != 10*time.Millisecond || s.Excess() != 40*time.Millisecond {
		t.Errorf("straggler stats: %+v", s)
	}
	if got := cd.StragglersFor(5); len(got) != 1 || got[0] != s {
		t.Errorf("StragglersFor(5) = %+v", got)
	}
	if got := cd.StragglersFor(0); len(got) != 0 {
		t.Errorf("StragglersFor(0) = %+v, want empty", got)
	}

	// The floor suppresses the flag when the absolute excess is tiny.
	for r := range dumps {
		dumps[r].Phases.Put = 10 * time.Microsecond
	}
	dumps[5].Phases.Put = 50 * time.Microsecond // 5x median but only 40µs over
	cd, err = Aggregate(dumps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Stragglers) != 0 {
		t.Errorf("sub-floor excess still flagged: %+v", cd.Stragglers)
	}

	// Negative factor disables detection outright.
	dumps[5].Phases.Put = 50 * time.Millisecond
	cd, err = Aggregate(dumps, Options{StragglerFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Stragglers) != 0 {
		t.Errorf("disabled detection still flagged: %+v", cd.Stragglers)
	}
}

func TestAggregateRejectsBadRankSets(t *testing.T) {
	if _, err := Aggregate(nil, Options{}); err == nil {
		t.Error("empty dump set accepted")
	}
	dup := []metrics.Dump{{Rank: 0}, {Rank: 0}}
	if _, err := Aggregate(dup, Options{}); err == nil {
		t.Error("duplicate rank accepted")
	}
	oor := []metrics.Dump{{Rank: 0}, {Rank: 7}}
	if _, err := Aggregate(oor, Options{}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestWriteTextRendersAllSections(t *testing.T) {
	dumps := clusterDumps(4)
	dumps[3].Phases.Put = 400 * time.Millisecond // force a straggler
	cd, err := Aggregate(dumps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cd.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"cluster dump: 4 ranks", "phase", "median", "p95",
		"imbalance (max/mean)", "clock spread", "stragglers", "rank 3 put",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
