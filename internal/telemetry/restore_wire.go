package telemetry

import (
	"encoding/binary"
	"fmt"
	"time"

	"dedupcr/internal/metrics"
)

// restoreWireVersion tags the binary layout of an encoded
// metrics.Restore. The restore family was introduced with telemetry wire
// version 3, so it starts there; there is no older layout to accept.
const restoreWireVersion = 3

// EncodeRestore serializes one rank's restore metrics for the in-band
// gather: a version byte, the fixed counters and phase durations as
// big-endian int64s, the per-peer traffic-matrix row with a uint32
// length prefix, the barrier-exit wall stamp (unix nanoseconds, 0 when
// unset) and three optional histograms (run lengths, fetch latency,
// store read latency), each a flag byte + length-prefixed sparse
// encoding.
func EncodeRestore(r metrics.Restore) ([]byte, error) {
	var buf []byte
	i64 := func(v int64) { buf = binary.BigEndian.AppendUint64(buf, uint64(v)) }
	i64s := func(v []int64) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		for _, x := range v {
			i64(x)
		}
	}
	hist := func(h *metrics.Histogram) error {
		if h == nil {
			buf = append(buf, 0)
			return nil
		}
		buf = append(buf, 1)
		hb, err := h.MarshalBinary()
		if err != nil {
			return err
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(hb)))
		buf = append(buf, hb...)
		return nil
	}

	buf = append(buf, restoreWireVersion)
	i64(int64(r.Rank))
	i64(r.LogicalBytes)
	i64(int64(r.TotalChunks))
	i64(int64(r.UniqueChunks))
	i64(int64(r.LocalChunks))
	i64(r.LocalBytes)
	i64(int64(r.FetchedChunks))
	i64(r.FetchedBytes)
	i64(r.FetchRequests)
	i64(r.FetchMisses)
	i64(int64(r.MetaFetches))
	i64(int64(r.RecoveredChunks))
	i64(int64(r.SourceRanks))
	i64(int64(r.ObjectsTouched))
	i64(r.LargestRun)

	p := r.Phases
	for _, ph := range []time.Duration{
		p.Meta, p.Assemble, p.Fetch, p.Recover, p.Commit, p.Barrier, p.Total,
	} {
		i64(int64(ph))
	}

	i64s(r.PeerFetchChunks)
	i64s(r.PeerFetchBytes)

	if r.BarrierExit.IsZero() {
		i64(0)
	} else {
		i64(r.BarrierExit.UnixNano())
	}

	for _, h := range []*metrics.Histogram{r.RunLengths, r.FetchLatency, r.StoreReadLatency} {
		if err := hist(h); err != nil {
			return nil, fmt.Errorf("telemetry: encode restore histogram: %w", err)
		}
	}
	return buf, nil
}

// DecodeRestore reverses EncodeRestore. Decoding is strict: every length
// prefix is bounds-checked against the remaining input before any
// allocation, and trailing bytes are rejected.
func DecodeRestore(data []byte) (metrics.Restore, error) {
	var r metrics.Restore
	if len(data) == 0 {
		return r, fmt.Errorf("telemetry: empty restore encoding")
	}
	if data[0] != restoreWireVersion {
		return r, fmt.Errorf("telemetry: restore wire version %d, want %d", data[0], restoreWireVersion)
	}
	data = data[1:]
	fail := func() (metrics.Restore, error) {
		return metrics.Restore{}, fmt.Errorf("telemetry: truncated restore encoding")
	}
	i64 := func() (int64, bool) {
		if len(data) < 8 {
			return 0, false
		}
		v := int64(binary.BigEndian.Uint64(data))
		data = data[8:]
		return v, true
	}
	i64s := func() ([]int64, bool) {
		if len(data) < 4 {
			return nil, false
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if n == 0 {
			return nil, true
		}
		if len(data) < 8*n {
			return nil, false
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(data[8*i:]))
		}
		data = data[8*n:]
		return out, true
	}
	hist := func() (*metrics.Histogram, bool, error) {
		if len(data) < 1 {
			return nil, false, nil
		}
		flag := data[0]
		data = data[1:]
		switch flag {
		case 0:
			return nil, true, nil
		case 1:
			if len(data) < 4 {
				return nil, false, nil
			}
			n := int(binary.BigEndian.Uint32(data))
			data = data[4:]
			if len(data) < n {
				return nil, false, nil
			}
			h := metrics.NewHistogram()
			if err := h.UnmarshalBinary(data[:n]); err != nil {
				return nil, false, err
			}
			data = data[n:]
			return h, true, nil
		default:
			return nil, false, fmt.Errorf("telemetry: bad restore histogram flag %d", flag)
		}
	}

	ints := make([]int64, 15)
	for i := range ints {
		v, ok := i64()
		if !ok {
			return fail()
		}
		ints[i] = v
	}
	r.Rank = int(ints[0])
	r.LogicalBytes = ints[1]
	r.TotalChunks = int(ints[2])
	r.UniqueChunks = int(ints[3])
	r.LocalChunks = int(ints[4])
	r.LocalBytes = ints[5]
	r.FetchedChunks = int(ints[6])
	r.FetchedBytes = ints[7]
	r.FetchRequests = ints[8]
	r.FetchMisses = ints[9]
	r.MetaFetches = int(ints[10])
	r.RecoveredChunks = int(ints[11])
	r.SourceRanks = int(ints[12])
	r.ObjectsTouched = int(ints[13])
	r.LargestRun = ints[14]

	phases := make([]time.Duration, 7)
	for i := range phases {
		v, ok := i64()
		if !ok {
			return fail()
		}
		phases[i] = time.Duration(v)
	}
	p := &r.Phases
	p.Meta, p.Assemble, p.Fetch, p.Recover = phases[0], phases[1], phases[2], phases[3]
	p.Commit, p.Barrier, p.Total = phases[4], phases[5], phases[6]

	var ok bool
	if r.PeerFetchChunks, ok = i64s(); !ok {
		return fail()
	}
	if r.PeerFetchBytes, ok = i64s(); !ok {
		return fail()
	}

	exit, ok := i64()
	if !ok {
		return fail()
	}
	if exit != 0 {
		r.BarrierExit = time.Unix(0, exit)
	}

	for _, dst := range []**metrics.Histogram{&r.RunLengths, &r.FetchLatency, &r.StoreReadLatency} {
		h, ok, err := hist()
		if err != nil {
			return metrics.Restore{}, fmt.Errorf("telemetry: decode restore histogram: %w", err)
		}
		if !ok {
			return fail()
		}
		*dst = h
	}
	if len(data) != 0 {
		return metrics.Restore{}, fmt.Errorf("telemetry: %d trailing bytes after restore encoding", len(data))
	}
	return r, nil
}
