package telemetry

import (
	"bytes"
	"testing"
	"time"

	"dedupcr/internal/metrics"
)

// fullRestore builds a restore with every field populated, all three
// histograms included.
func fullRestore(rank int) metrics.Restore {
	runs := metrics.NewHistogram()
	for _, v := range []int64{1, 1, 2, 7, 64, 256} {
		runs.Record(v)
	}
	fetch := metrics.NewHistogram()
	for _, v := range []int64{40_000, 90_000, 2_000_000} {
		fetch.Record(v)
	}
	reads := metrics.NewHistogram()
	for _, v := range []int64{700, 1_200, 55_000} {
		reads.Record(v)
	}
	return metrics.Restore{
		Rank: rank, LogicalBytes: 1 << 20, TotalChunks: 256, UniqueChunks: 240,
		LocalChunks: 150, LocalBytes: 600_000, FetchedChunks: 106, FetchedBytes: 448_576,
		FetchRequests: 110, FetchMisses: 4, MetaFetches: 1, RecoveredChunks: 12,
		SourceRanks: 5, ObjectsTouched: 161, LargestRun: 256,
		PeerFetchChunks: []int64{0, 40, 66}, PeerFetchBytes: []int64{0, 160_000, 288_576},
		Phases: metrics.RestorePhases{
			Meta: 300 * time.Microsecond, Assemble: 9 * time.Millisecond,
			Fetch: 6 * time.Millisecond, Recover: 2 * time.Millisecond,
			Commit: time.Millisecond, Barrier: 700 * time.Microsecond,
			Total: 13 * time.Millisecond,
		},
		BarrierExit:      time.Unix(1700000000, 987654321),
		RunLengths:       runs,
		FetchLatency:     fetch,
		StoreReadLatency: reads,
	}
}

func TestRestoreWireRoundTrip(t *testing.T) {
	in := fullRestore(4)
	enc, err := EncodeRestore(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRestore(enc)
	if err != nil {
		t.Fatal(err)
	}

	// Compare everything except the histogram pointers field-wise.
	inCmp, outCmp := in, out
	inCmp.RunLengths, outCmp.RunLengths = nil, nil
	inCmp.FetchLatency, outCmp.FetchLatency = nil, nil
	inCmp.StoreReadLatency, outCmp.StoreReadLatency = nil, nil
	inCmp.PeerFetchChunks, outCmp.PeerFetchChunks = nil, nil
	inCmp.PeerFetchBytes, outCmp.PeerFetchBytes = nil, nil
	if inCmp.Rank != outCmp.Rank || inCmp.FetchedBytes != outCmp.FetchedBytes ||
		inCmp.Phases != outCmp.Phases || inCmp.LargestRun != outCmp.LargestRun ||
		inCmp.ObjectsTouched != outCmp.ObjectsTouched ||
		!inCmp.BarrierExit.Equal(outCmp.BarrierExit) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", inCmp, outCmp)
	}
	if len(out.PeerFetchChunks) != 3 || out.PeerFetchChunks[2] != 66 ||
		len(out.PeerFetchBytes) != 3 || out.PeerFetchBytes[1] != 160_000 {
		t.Fatalf("peer matrix mismatch: %v / %v", out.PeerFetchChunks, out.PeerFetchBytes)
	}
	for i, pair := range []struct{ in, out *metrics.Histogram }{
		{in.RunLengths, out.RunLengths},
		{in.FetchLatency, out.FetchLatency},
		{in.StoreReadLatency, out.StoreReadLatency},
	} {
		if pair.out == nil {
			t.Fatalf("histogram %d lost in round trip", i)
		}
		if pair.out.Count() != pair.in.Count() || pair.out.Sum() != pair.in.Sum() {
			t.Errorf("histogram %d count/sum mismatch", i)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got, want := pair.out.Quantile(q), pair.in.Quantile(q); got != want {
				t.Errorf("histogram %d q%.2f: got %d, want %d", i, q, got, want)
			}
		}
	}
	if got, want := out.ReadAmplificationBytes(), in.ReadAmplificationBytes(); got != want {
		t.Errorf("read amplification: got %g, want %g", got, want)
	}
}

func TestRestoreWireNilHistogramsAndZeroTime(t *testing.T) {
	in := metrics.Restore{Rank: 0}
	enc, err := EncodeRestore(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRestore(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.RunLengths != nil || out.FetchLatency != nil || out.StoreReadLatency != nil {
		t.Error("nil histogram decoded as non-nil")
	}
	if !out.BarrierExit.IsZero() {
		t.Errorf("zero barrier exit decoded as %v", out.BarrierExit)
	}
	if out.PeerFetchChunks != nil || out.PeerFetchBytes != nil {
		t.Error("empty peer matrix decoded as non-nil")
	}
}

func TestRestoreWireRejects(t *testing.T) {
	enc, err := EncodeRestore(fullRestore(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRestore(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeRestore(append([]byte{99}, enc[1:]...)); err == nil {
		t.Error("wrong version accepted")
	}
	// The restore codec is new in wire v3: a v2 version byte has no
	// restore payload to carry and must be rejected, not guessed at.
	if _, err := DecodeRestore(append([]byte{dumpWireVersionV2}, enc[1:]...)); err == nil {
		t.Error("v2 version byte accepted on the restore codec")
	}
	for _, cut := range []int{1, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeRestore(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeRestore(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestDumpWireDecodesV2 pins cross-version compatibility: the wire bump
// to v3 (which added the restore codec) left the dump layout untouched,
// so a v2 peer's dump payload must still decode on a v3 aggregator —
// mixed-version clusters mid-rollout gather without error.
func TestDumpWireDecodesV2(t *testing.T) {
	in := fullDump(2)
	enc, err := EncodeDump(in)
	if err != nil {
		t.Fatal(err)
	}
	v2 := append([]byte(nil), enc...)
	v2[0] = dumpWireVersionV2
	out, err := DecodeDump(v2)
	if err != nil {
		t.Fatalf("v2 dump rejected by v3 decoder: %v", err)
	}
	if out.Rank != in.Rank || out.SentBytes != in.SentBytes || out.Phases.Put != in.Phases.Put {
		t.Fatalf("v2 decode mismatch: %+v", out)
	}
	if out.PutLatency == nil || out.PutLatency.Count() != in.PutLatency.Count() {
		t.Error("v2 histogram lost")
	}
}

// TestRestoreEncodingByteIdentical pins the restore wire encoding the
// same way TestDumpEncodingByteIdentical pins the dump's: 100
// independently built restores of the same metrics must encode to the
// same bytes.
func TestRestoreEncodingByteIdentical(t *testing.T) {
	want, err := EncodeRestore(fullRestore(3))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 100; run++ {
		got, err := EncodeRestore(fullRestore(3))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: encoding differs (%d vs %d bytes)", run, len(got), len(want))
		}
	}
}

// FuzzRestoreMetricsDecode drives the restore telemetry decoder with
// arbitrary bytes: every length prefix arrives from peers and must be
// bounded before allocation, and any input that decodes must survive a
// re-encode cycle.
func FuzzRestoreMetricsDecode(f *testing.F) {
	valid, err := EncodeRestore(fullRestore(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte{})
	f.Add([]byte{restoreWireVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRestore(data)
		if err != nil {
			return
		}
		enc, err := EncodeRestore(r)
		if err != nil {
			t.Fatalf("re-encode of decoded restore failed: %v", err)
		}
		if _, err := DecodeRestore(enc); err != nil {
			t.Fatalf("re-decode of re-encoded restore failed: %v", err)
		}
	})
}
