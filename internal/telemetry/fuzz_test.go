package telemetry

import "testing"

// FuzzDecodeDump drives the telemetry dump decoder with arbitrary bytes:
// the duration-slice and histogram length prefixes arrive from peers and
// must be bounded, and any input that decodes must survive a re-encode
// cycle.
func FuzzDecodeDump(f *testing.F) {
	valid, err := EncodeDump(fullDump(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:9])
	f.Add([]byte{})
	f.Add([]byte{dumpWireVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDump(data)
		if err != nil {
			return
		}
		enc, err := EncodeDump(d)
		if err != nil {
			t.Fatalf("re-encode of decoded dump failed: %v", err)
		}
		if _, err := DecodeDump(enc); err != nil {
			t.Fatalf("re-decode of re-encoded dump failed: %v", err)
		}
	})
}
