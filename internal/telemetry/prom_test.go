package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dedupcr/internal/metrics"
)

// TestClusterExpositionWellFormed runs the strict checker over the
// cluster families, with and without stragglers present.
func TestClusterExpositionWellFormed(t *testing.T) {
	dumps := clusterDumps(4)
	cd, err := Aggregate(dumps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cd.WritePrometheus(&buf)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("cluster exposition malformed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dedupcr_cluster_ranks 4",
		`dedupcr_cluster_phase_seconds{phase="put",stat="median"}`,
		`dedupcr_cluster_phase_seconds{phase="total",stat="p95"}`,
		`dedupcr_cluster_phase_slowest_rank{phase="put"} 3`,
		`dedupcr_cluster_rank_sent_bytes{rank="0"} 1000`,
		"dedupcr_cluster_designation_imbalance",
		"dedupcr_cluster_send_imbalance",
		`dedupcr_cluster_clock_offset_seconds{rank="3"} 0.000000000`,
		"dedupcr_cluster_clock_spread_seconds 0.000003000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// No stragglers in the ramp fixture below the put threshold? The
	// ramp does flag the top rank; assert the excess family carries it
	// and stays well-formed.
	if len(cd.Stragglers) > 0 {
		if !strings.Contains(out, "dedupcr_cluster_straggler_excess_seconds{rank=") {
			t.Errorf("stragglers present but excess family missing:\n%s", out)
		}
	}

	// A straggler-free dump must omit the excess family entirely.
	flat := make([]metrics.Dump, 4)
	for r := range flat {
		flat[r] = metrics.Dump{Rank: r, Phases: metrics.Phases{Put: time.Millisecond, Total: time.Millisecond}}
	}
	cdFlat, err := Aggregate(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	cdFlat.WritePrometheus(&buf)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("flat cluster exposition malformed: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "straggler_excess") {
		t.Errorf("flat cluster still exposes straggler excess:\n%s", buf.String())
	}
}
