package telemetry

import (
	"testing"
	"time"

	"dedupcr/internal/metrics"
)

// fullDump builds a dump with every field populated, histogram included.
func fullDump(rank int) metrics.Dump {
	h := metrics.NewHistogram()
	for _, v := range []int64{900, 12_000, 47_000, 2_000_000, 150_000_000} {
		h.Record(v)
	}
	return metrics.Dump{
		Rank: rank, DatasetBytes: 1 << 20, TotalChunks: 256, LocalUniqueChunks: 200,
		HashedBytes: 1 << 20, StoredChunks: 210, StoredBytes: 860_000,
		SentChunks: 120, SentBytes: 490_000, RecvChunks: 118, RecvBytes: 480_000,
		ReductionBytes: 65_000, ReductionRounds: 3, LoadExchangeBytes: 2_048,
		WindowBytes: 500_000, UniqueContentBytes: 820_000, PutRetries: 7,
		Phases: metrics.Phases{
			Chunking: time.Millisecond, Fingerprint: 2 * time.Millisecond,
			LocalDedup: 300 * time.Microsecond, Reduction: 4 * time.Millisecond,
			ReductionRoundTimes: []time.Duration{2 * time.Millisecond, 1500 * time.Microsecond},
			FingerprintWorkers:  []time.Duration{time.Millisecond, 900 * time.Microsecond},
			PutWorkers:          []time.Duration{2 * time.Millisecond},
			LoadExchange:        time.Millisecond, Planning: 200 * time.Microsecond,
			WindowOpen: 50 * time.Microsecond, Put: 3 * time.Millisecond,
			WindowWait: 2 * time.Millisecond, Commit: time.Millisecond,
			Barrier: 400 * time.Microsecond, Total: 16 * time.Millisecond,
		},
		BarrierExit: time.Unix(1700000000, 123456789),
		PutLatency:  h,
	}
}

func TestDumpWireRoundTrip(t *testing.T) {
	in := fullDump(3)
	enc, err := EncodeDump(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDump(enc)
	if err != nil {
		t.Fatal(err)
	}

	// Compare everything except the histogram pointer field-wise.
	inCmp, outCmp := in, out
	inCmp.PutLatency, outCmp.PutLatency = nil, nil
	if inCmp.Rank != outCmp.Rank || inCmp.SentBytes != outCmp.SentBytes ||
		inCmp.Phases.Put != outCmp.Phases.Put ||
		inCmp.PutRetries != outCmp.PutRetries ||
		!inCmp.BarrierExit.Equal(outCmp.BarrierExit) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", inCmp, outCmp)
	}
	if got, want := len(out.Phases.ReductionRoundTimes), 2; got != want {
		t.Fatalf("reduction rounds: got %d, want %d", got, want)
	}
	if out.Phases.ReductionRoundTimes[1] != 1500*time.Microsecond {
		t.Errorf("round time mismatch: %v", out.Phases.ReductionRoundTimes)
	}
	if got, want := len(out.Phases.PutWorkers), 1; got != want {
		t.Fatalf("put workers: got %d, want %d", got, want)
	}
	if out.PutLatency == nil {
		t.Fatal("histogram lost in round trip")
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got, want := out.PutLatency.Quantile(q), in.PutLatency.Quantile(q); got != want {
			t.Errorf("q%.2f: got %d, want %d", q, got, want)
		}
	}
	if out.PutLatency.Count() != in.PutLatency.Count() || out.PutLatency.Sum() != in.PutLatency.Sum() {
		t.Errorf("histogram count/sum mismatch")
	}
}

func TestDumpWireNilHistogramAndZeroTime(t *testing.T) {
	in := metrics.Dump{Rank: 0}
	enc, err := EncodeDump(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDump(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out.PutLatency != nil {
		t.Error("nil histogram decoded as non-nil")
	}
	if !out.BarrierExit.IsZero() {
		t.Errorf("zero barrier exit decoded as %v", out.BarrierExit)
	}
}

func TestDumpWireRejects(t *testing.T) {
	enc, err := EncodeDump(fullDump(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDump(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeDump(append([]byte{99}, enc[1:]...)); err == nil {
		t.Error("wrong version accepted")
	}
	for _, cut := range []int{1, 8, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeDump(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeDump(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
