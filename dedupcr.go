// Package dedupcr is the public face of the library: dedup-aware
// collective checkpoint replication, reproducing Nicolae, "Leveraging
// Naturally Distributed Data Redundancy to Reduce Collective I/O
// Replication Overhead" (IPDPS 2015).
//
// The implementation lives in internal packages (see DESIGN.md for the
// map); this package re-exports the surface a downstream application
// needs: the communicator runtime, node-local stores, the DUMP_OUTPUT /
// Restore primitives, and the checkpoint-restart runtime.
//
//	cluster := dedupcr.NewCluster(8)
//	dedupcr.Run(8, func(c dedupcr.Comm) error {
//	    _, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), buf, dedupcr.Options{
//	        K: 3, Approach: dedupcr.CollDedup, Name: "ckpt-1",
//	    })
//	    return err
//	})
package dedupcr

import (
	"context"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/ftrun"
	"dedupcr/internal/storage"
)

// Communicator runtime: ranks, tagged messages, collectives, windows.
type (
	// Comm is one rank's communicator endpoint.
	Comm = collectives.Comm
	// Group is an in-process communicator group (ranks as goroutines).
	Group = collectives.Group
	// TCPComm is the socket-transport communicator.
	TCPComm = collectives.TCPComm
)

// Run executes body once per rank on a fresh in-process group.
func Run(n int, body func(Comm) error) error { return collectives.Run(n, body) }

// RunCtx is Run under a context: cancelling ctx aborts the whole group,
// unblocking every rank promptly with the cancellation cause.
func RunCtx(ctx context.Context, n int, body func(context.Context, Comm) error) error {
	return collectives.RunCtx(ctx, n, body)
}

// NewGroup creates an in-process group of n ranks.
func NewGroup(n int) (*Group, error) { return collectives.NewGroup(n) }

// DialTCP joins a socket-transport group; rank i listens on addrs[i].
func DialTCP(rank int, addrs []string) (*TCPComm, error) {
	return collectives.DialTCP(rank, addrs)
}

// StartLocalTCP creates a loopback socket group for tests and demos.
func StartLocalTCP(n int) ([]*TCPComm, error) { return collectives.StartLocalTCP(n) }

// Node-local storage.
type (
	// Store is a node-local chunk store.
	Store = storage.Store
	// Cluster is a set of per-rank stores with failure injection.
	Cluster = storage.Cluster
)

// NewMemStore returns an in-memory node-local store.
func NewMemStore() Store { return storage.NewMem() }

// NewDiskStore opens a disk-backed node-local store rooted at dir (the
// flat one-file-per-chunk engine).
func NewDiskStore(dir string) (Store, error) { return storage.NewDisk(dir) }

// NewSegStore opens the log-structured segment store rooted at dir:
// chunks append into segments, checkpoints become durable atomically at
// commit points, and a background compactor reclaims released space.
// Close it to seal, commit and stop the compactor.
func NewSegStore(dir string) (*storage.SegStore, error) {
	return storage.NewSegStore(dir, storage.SegConfig{AutoCompact: true})
}

// NewCluster creates n in-memory node stores.
func NewCluster(n int) *Cluster { return storage.NewCluster(n) }

// The collective write primitive and its configuration.
type (
	// Options configures a collective dump.
	Options = core.Options
	// Approach selects the replication strategy.
	Approach = core.Approach
	// Result is the outcome of one collective dump on one rank.
	Result = core.Result
	// Topology describes rack placement for rack-aware partner selection.
	Topology = core.Topology
	// RetryPolicy bounds retries of transient transport failures during
	// the window-put exchange (Options.Retry).
	RetryPolicy = core.RetryPolicy
	// ChunkerSpec selects the chunking algorithm and size
	// (Options.Chunker): fixed-size, Rabin CDC, or gear-hash CDC with
	// its arch-selected fast path. The zero value is fixed/4 KiB.
	ChunkerSpec = chunk.Spec
	// ChunkerAlgo names a chunking algorithm (ChunkerSpec.Algo).
	ChunkerAlgo = chunk.Algo
)

// The chunking algorithms a ChunkerSpec can select.
const (
	// ChunkerFixed is fixed-size chunking, the paper's page model (the
	// zero value, so the default for Options that never set a chunker).
	ChunkerFixed = chunk.AlgoFixed
	// ChunkerCDC is the rolling Rabin-style content-defined chunker.
	ChunkerCDC = chunk.AlgoRabin
	// ChunkerGear is the gear-hash content-defined chunker: boundary-
	// compatible bounds discipline with ChunkerCDC at a fraction of the
	// per-byte cost (one table lookup + shift-add, unrolled fast path on
	// amd64/arm64).
	ChunkerGear = chunk.AlgoGear
)

// ParseChunker parses a CLI chunker name: fixed | cdc | gear.
func ParseChunker(s string) (ChunkerAlgo, error) { return chunk.ParseAlgo(s) }

// Failure model: typed errors, collective abort, fault injection.
type (
	// CollectiveError is the typed failure every survivor of an aborted
	// collective returns: the failed ranks, the pipeline phase, and the
	// cause. Match with errors.As, or errors.Is against ErrAborted /
	// ErrRankFailed.
	CollectiveError = collectives.CollectiveError
	// Fault is one injected communication failure.
	Fault = collectives.Fault
	// FaultKind selects what an injected fault does.
	FaultKind = collectives.FaultKind
	// FaultPlan is a deterministic, seeded failure schedule.
	FaultPlan = collectives.FaultPlan
)

// The injectable fault kinds.
const (
	// FaultKill simulates the crash of a rank at the trigger point.
	FaultKill = collectives.FaultKill
	// FaultDrop silently discards matched sends.
	FaultDrop = collectives.FaultDrop
	// FaultDelay delays matched operations.
	FaultDelay = collectives.FaultDelay
	// FaultError fails matched sends with a transient, retryable error.
	FaultError = collectives.FaultError
)

// AnyRank is the wildcard rank for fault filters and window receives.
const AnyRank = collectives.AnyRank

// Sentinel errors of the failure model.
var (
	// ErrRankFailed reports that a peer rank died mid-collective.
	ErrRankFailed = collectives.ErrRankFailed
	// ErrAborted reports that the collective was aborted.
	ErrAborted = collectives.ErrAborted
	// ErrClosed reports use of a closed communicator.
	ErrClosed = collectives.ErrClosed
	// ErrInjected is the root cause of injector-produced failures.
	ErrInjected = collectives.ErrInjected
)

// Abort aborts the collective group from this rank with the given cause;
// every blocked rank unblocks with a *CollectiveError.
func Abort(c Comm, cause error) { collectives.Abort(c, cause) }

// Kill simulates the crash of this rank: local operations fail from now
// on and peers detect the death through the transport.
func Kill(c Comm, cause error) { collectives.Kill(c, cause) }

// InjectFaults wraps a rank's communicator with a deterministic fault
// plan (kills, drops, delays, transient errors at chosen phases).
func InjectFaults(c Comm, plan FaultPlan) Comm { return collectives.InjectFaults(c, plan) }

// FailedRanks extracts the failed ranks recorded in err's CollectiveError
// chain, or nil.
func FailedRanks(err error) []int { return collectives.FailedRanks(err) }

// The three strategies of the paper's evaluation.
const (
	// NoDedup is full replication of every chunk.
	NoDedup = core.NoDedup
	// LocalDedup deduplicates within each rank before replicating.
	LocalDedup = core.LocalDedup
	// CollDedup is the paper's contribution: collective deduplication
	// with natural replicas.
	CollDedup = core.CollDedup
)

// DefaultF is the paper's fingerprint-count threshold (2^17).
const DefaultF = core.DefaultF

// DumpOutput is the paper's collective write primitive; see
// internal/core.DumpOutput for the full contract. Equivalent to
// DumpOutputCtx with a background context.
func DumpOutput(c Comm, store Store, buf []byte, o Options) (*Result, error) {
	return core.DumpOutput(c, store, buf, o)
}

// DumpOutputCtx is DumpOutput under a context: cancellation (or a passed
// deadline) aborts the collective on every rank instead of deadlocking
// the group on a missing participant. Mid-dump failures surface on every
// survivor as a *CollectiveError; the local store is left consistent —
// fully committed or rolled back clean. See internal/core.DumpOutputCtx.
func DumpOutputCtx(ctx context.Context, c Comm, store Store, buf []byte, o Options) (*Result, error) {
	return core.DumpOutputCtx(ctx, c, store, buf, o)
}

// Restore collectively reassembles a dataset dumped under name,
// tolerating up to K-1 node losses. Equivalent to RestoreCtx with a
// background context.
func Restore(c Comm, store Store, name string) ([]byte, error) {
	return core.Restore(c, store, name)
}

// RestoreCtx is Restore under a context; cancellation aborts the
// collective restore on every rank.
func RestoreCtx(ctx context.Context, c Comm, store Store, name string) ([]byte, error) {
	return core.RestoreCtx(ctx, c, store, name)
}

// Forget reclaims this node's storage for an old dataset (reference
// counted; chunks shared with newer dumps survive).
func Forget(store Store, name string, rank int) error {
	return core.Forget(store, name, rank)
}

// Bool is a convenience for filling Options.Shuffle.
func Bool(v bool) *bool { return core.Bool(v) }

// NewUniformTopology spreads n ranks over racks in contiguous blocks.
func NewUniformTopology(n, racks int) Topology { return core.NewUniformTopology(n, racks) }

// Checkpoint-restart runtime (the AC-FTE role).
type (
	// Runtime drives checkpoint-restart for one rank.
	Runtime = ftrun.Runtime
	// Checkpointable is the application-level checkpoint interface.
	Checkpointable = ftrun.Checkpointable
)

// ErrNoCheckpoint is returned by restarts when nothing survived.
var ErrNoCheckpoint = ftrun.ErrNoCheckpoint

// NewRuntime creates a checkpoint-restart runtime for this rank.
func NewRuntime(c Comm, store Store, o Options) *Runtime {
	return ftrun.New(c, store, o)
}
