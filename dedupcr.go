// Package dedupcr is the public face of the library: dedup-aware
// collective checkpoint replication, reproducing Nicolae, "Leveraging
// Naturally Distributed Data Redundancy to Reduce Collective I/O
// Replication Overhead" (IPDPS 2015).
//
// The implementation lives in internal packages (see DESIGN.md for the
// map); this package re-exports the surface a downstream application
// needs: the communicator runtime, node-local stores, the DUMP_OUTPUT /
// Restore primitives, and the checkpoint-restart runtime.
//
//	cluster := dedupcr.NewCluster(8)
//	dedupcr.Run(8, func(c dedupcr.Comm) error {
//	    _, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), buf, dedupcr.Options{
//	        K: 3, Approach: dedupcr.CollDedup, Name: "ckpt-1",
//	    })
//	    return err
//	})
package dedupcr

import (
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/ftrun"
	"dedupcr/internal/storage"
)

// Communicator runtime: ranks, tagged messages, collectives, windows.
type (
	// Comm is one rank's communicator endpoint.
	Comm = collectives.Comm
	// Group is an in-process communicator group (ranks as goroutines).
	Group = collectives.Group
	// TCPComm is the socket-transport communicator.
	TCPComm = collectives.TCPComm
)

// Run executes body once per rank on a fresh in-process group.
func Run(n int, body func(Comm) error) error { return collectives.Run(n, body) }

// NewGroup creates an in-process group of n ranks.
func NewGroup(n int) (*Group, error) { return collectives.NewGroup(n) }

// DialTCP joins a socket-transport group; rank i listens on addrs[i].
func DialTCP(rank int, addrs []string) (*TCPComm, error) {
	return collectives.DialTCP(rank, addrs)
}

// StartLocalTCP creates a loopback socket group for tests and demos.
func StartLocalTCP(n int) ([]*TCPComm, error) { return collectives.StartLocalTCP(n) }

// Node-local storage.
type (
	// Store is a node-local chunk store.
	Store = storage.Store
	// Cluster is a set of per-rank stores with failure injection.
	Cluster = storage.Cluster
)

// NewMemStore returns an in-memory node-local store.
func NewMemStore() Store { return storage.NewMem() }

// NewDiskStore opens a disk-backed node-local store rooted at dir.
func NewDiskStore(dir string) (Store, error) { return storage.NewDisk(dir) }

// NewCluster creates n in-memory node stores.
func NewCluster(n int) *Cluster { return storage.NewCluster(n) }

// The collective write primitive and its configuration.
type (
	// Options configures a collective dump.
	Options = core.Options
	// Approach selects the replication strategy.
	Approach = core.Approach
	// Result is the outcome of one collective dump on one rank.
	Result = core.Result
	// Topology describes rack placement for rack-aware partner selection.
	Topology = core.Topology
)

// The three strategies of the paper's evaluation.
const (
	// NoDedup is full replication of every chunk.
	NoDedup = core.NoDedup
	// LocalDedup deduplicates within each rank before replicating.
	LocalDedup = core.LocalDedup
	// CollDedup is the paper's contribution: collective deduplication
	// with natural replicas.
	CollDedup = core.CollDedup
)

// DefaultF is the paper's fingerprint-count threshold (2^17).
const DefaultF = core.DefaultF

// DumpOutput is the paper's collective write primitive; see
// internal/core.DumpOutput for the full contract.
func DumpOutput(c Comm, store Store, buf []byte, o Options) (*Result, error) {
	return core.DumpOutput(c, store, buf, o)
}

// Restore collectively reassembles a dataset dumped under name,
// tolerating up to K-1 node losses.
func Restore(c Comm, store Store, name string) ([]byte, error) {
	return core.Restore(c, store, name)
}

// Forget reclaims this node's storage for an old dataset (reference
// counted; chunks shared with newer dumps survive).
func Forget(store Store, name string, rank int) error {
	return core.Forget(store, name, rank)
}

// Bool is a convenience for filling Options.Shuffle.
func Bool(v bool) *bool { return core.Bool(v) }

// NewUniformTopology spreads n ranks over racks in contiguous blocks.
func NewUniformTopology(n, racks int) Topology { return core.NewUniformTopology(n, racks) }

// Checkpoint-restart runtime (the AC-FTE role).
type (
	// Runtime drives checkpoint-restart for one rank.
	Runtime = ftrun.Runtime
	// Checkpointable is the application-level checkpoint interface.
	Checkpointable = ftrun.Checkpointable
)

// ErrNoCheckpoint is returned by restarts when nothing survived.
var ErrNoCheckpoint = ftrun.ErrNoCheckpoint

// NewRuntime creates a checkpoint-restart runtime for this rank.
func NewRuntime(c Comm, store Store, o Options) *Runtime {
	return ftrun.New(c, store, o)
}
