// Package dedupcr's top-level benchmarks regenerate every table and
// figure of the paper's evaluation at full scale (up to 408 simulated
// ranks) and print them in the paper's format:
//
//	go test -bench=. -benchmem                  # everything
//	go test -bench=BenchmarkTable1 -benchmem    # one artifact
//	DEDUPCR_QUICK=1 go test -bench=. -benchmem  # CI-sized quick pass
//
// Each benchmark runs the full pipeline — mini-app, chunking, collective
// reduction, window exchange, storage commit — and reports the simulated
// Shamrock seconds as benchmark metrics alongside the rendered table.
package dedupcr_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"dedupcr"
	"dedupcr/internal/chunk/gear"
	"dedupcr/internal/experiments"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

func benchConfig() experiments.Config {
	return experiments.Config{Quick: os.Getenv("DEDUPCR_QUICK") != ""}
}

// runExperiment executes one registered experiment per benchmark
// iteration (experiments are heavy, so b.N is typically 1) and prints the
// resulting table once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rendered string
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		rendered = tab.Render()
	}
	b.StopTimer()
	// Scenario results are memoized, so after the first full run the
	// benchmark replays quickly and Go ramps b.N up; print the table
	// only on the initial probe invocation.
	if b.N == 1 {
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, rendered)
	}
}

// BenchmarkFig3aUniqueContent regenerates Figure 3(a): total size of
// unique content for HPCCG-196, CM1-256, HPCCG-408 and CM1-408.
func BenchmarkFig3aUniqueContent(b *testing.B) { runExperiment(b, "fig3a") }

// BenchmarkFig3bReductionOverheadHPCCG regenerates Figure 3(b): the
// collective hash reduction overhead for HPCCG at increasing scale.
func BenchmarkFig3bReductionOverheadHPCCG(b *testing.B) { runExperiment(b, "fig3b") }

// BenchmarkFig3cReductionOverheadCM1 regenerates Figure 3(c) for CM1.
func BenchmarkFig3cReductionOverheadCM1(b *testing.B) { runExperiment(b, "fig3c") }

// BenchmarkTable1CompletionTime regenerates Table I: completion times
// with a replication factor of 3 for both applications.
func BenchmarkTable1CompletionTime(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig4aHPCCGTimeVsK regenerates Figure 4(a): HPCCG execution
// time increase for replication factors 1..6.
func BenchmarkFig4aHPCCGTimeVsK(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bHPCCGSendVsK regenerates Figure 4(b): HPCCG replicated
// data per process (average and maximum).
func BenchmarkFig4bHPCCGSendVsK(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig4cHPCCGShuffle regenerates Figure 4(c): HPCCG maximal
// receive size with and without rank shuffling.
func BenchmarkFig4cHPCCGShuffle(b *testing.B) { runExperiment(b, "fig4c") }

// BenchmarkFig5aCM1TimeVsK regenerates Figure 5(a) for CM1.
func BenchmarkFig5aCM1TimeVsK(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bCM1SendVsK regenerates Figure 5(b) for CM1.
func BenchmarkFig5bCM1SendVsK(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig5cCM1Shuffle regenerates Figure 5(c) for CM1.
func BenchmarkFig5cCM1Shuffle(b *testing.B) { runExperiment(b, "fig5c") }

// BenchmarkRestoreFragmentation runs the restore-side fragmentation
// experiment — dump + instrumented restore across the duplication-degree
// sweep — gating the restore hot path (recipe walk, fetch service,
// telemetry gather) against regressions.
func BenchmarkRestoreFragmentation(b *testing.B) { runExperiment(b, "fragmentation") }

// Chunking-path benchmarks gate the vectorized hot path: the gear
// boundary scan, batched fingerprinting, and a full collective dump
// running both on the serial reference path.

// benchRandom returns a deterministic pseudo-random buffer (seeded rand,
// identical on every run, so the gate compares like with like).
func benchRandom(n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(buf)
	return buf
}

// BenchmarkGearChunk measures the gear boundary scan alone over 4 MiB of
// incompressible data — the phase the unrolled fast path accelerates.
// Its baseline entry keeps the selected implementation honest: a
// regression here usually means the scan fell back to the generic loop.
func BenchmarkGearChunk(b *testing.B) {
	buf := benchRandom(1 << 22)
	c := gear.New(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cuts(buf)
	}
}

// BenchmarkBatchFingerprint measures fingerprint.BatchOf over 1024
// chunk-sized spans — the per-shard call of the hash pool and the
// serial path's inner loop.
func BenchmarkBatchFingerprint(b *testing.B) {
	buf := benchRandom(1 << 22)
	spans := make([][]byte, 1024)
	for i := range spans {
		spans[i] = buf[i*4096 : (i+1)*4096]
	}
	dst := make([]fingerprint.FP, len(spans))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint.BatchOf(dst, spans...)
	}
}

// BenchmarkDumpGear runs a full 4-rank collective dump with the gear
// chunker on the serial reference path (Parallelism=1) through the
// public facade — boundary scan, batched hashing, reduction, window
// exchange and storage commit end to end.
func BenchmarkDumpGear(b *testing.B) {
	const n, size = 4, 1 << 20
	bufs := make([][]byte, n)
	shared := benchRandom(size / 2)
	for r := range bufs {
		private := make([]byte, size/2)
		rand.New(rand.NewSource(int64(r + 2))).Read(private)
		bufs[r] = append(append([]byte{}, shared...), private...)
	}
	b.SetBytes(int64(n * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := dedupcr.NewCluster(n)
		err := dedupcr.Run(n, func(c dedupcr.Comm) error {
			_, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), bufs[c.Rank()], dedupcr.Options{
				K: 2, Approach: dedupcr.CollDedup, Name: "bench",
				Chunker:     dedupcr.ChunkerSpec{Algo: dedupcr.ChunkerGear, Size: 4096},
				Parallelism: 1,
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Segment-engine micro-benchmarks gate the persistent store's two hot
// paths: the checkpoint write path (append + seal + commit) and the
// recovery path (manifest replay + index decode + chunk reads).

const (
	benchSegChunks    = 512
	benchSegChunkSize = 4096
)

// benchSegData returns deterministic distinct chunk payloads.
func benchSegData() [][]byte {
	chunks := make([][]byte, benchSegChunks)
	for i := range chunks {
		data := make([]byte, benchSegChunkSize)
		for j := range data {
			data[j] = byte(i*31 + j*7)
		}
		chunks[i] = data
	}
	return chunks
}

// BenchmarkSegmentAppend measures a full checkpoint write through the
// segment engine: 512 distinct 4 KiB chunks appended across ~8 sealed
// segments, then committed and durably closed.
func BenchmarkSegmentAppend(b *testing.B) {
	chunks := benchSegData()
	b.SetBytes(benchSegChunks * benchSegChunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		s, err := storage.NewSegStore(dir, storage.SegConfig{SegmentTarget: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for _, data := range chunks {
			if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentRestore measures crash-recovery plus a full read-back:
// each iteration reopens a committed store (manifest replay, per-segment
// index decode and checksum verification) and fetches every chunk.
func BenchmarkSegmentRestore(b *testing.B) {
	chunks := benchSegData()
	dir := b.TempDir()
	s, err := storage.NewSegStore(dir, storage.SegConfig{SegmentTarget: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	fps := make([]fingerprint.FP, len(chunks))
	for i, data := range chunks {
		fps[i] = fingerprint.Of(data)
		if err := s.PutChunk(fps[i], data); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchSegChunks * benchSegChunkSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := storage.NewSegStore(dir, storage.SegConfig{SegmentTarget: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for j, fp := range fps {
			data, err := s.GetChunk(fp)
			if err != nil {
				b.Fatal(err)
			}
			if len(data) != len(chunks[j]) {
				b.Fatalf("chunk %d: %d bytes", j, len(data))
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
