package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles the dedupvet binary once per test into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dedupvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build dedupvet: %v\n%s", err, out)
	}
	return bin
}

// dirtyLib is a library file with one ctxcheck finding and nothing else.
const dirtyLib = `package lib

import "context"

func Process() error {
	ctx := context.Background()
	return ctx.Err()
}
`

// cleanLib is the compat-annotated version of the same file.
const cleanLib = `package lib

import "context"

// Process is the documented pre-context wrapper.
//
//dedupvet:compat
func Process() error {
	ctx := context.Background()
	return ctx.Err()
}
`

// writeModule lays out a scratch module with the given internal/lib file.
func writeModule(t *testing.T, lib string) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/vettest\n\ngo 1.22\n")
	write("internal/lib/lib.go", lib)
	return dir
}

func TestProtocolVersion(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	// cmd/go requires `<name> version <version>` with a non-devel version;
	// it hashes the line as the tool's build ID.
	if !regexp.MustCompile(`^dedupvet version [^\s]+\n$`).Match(out) {
		t.Fatalf("-V=full output %q does not satisfy the cmd/go tool-id protocol", out)
	}
	if strings.Contains(string(out), "devel") {
		t.Fatalf("-V=full output %q reports a devel version, which cmd/go rejects", out)
	}
}

func TestProtocolFlags(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output %q is not the JSON cmd/go expects: %v", out, err)
	}
}

// exitCode runs cmd and returns its exit status plus combined output.
func exitCode(t *testing.T, cmd *exec.Cmd) (int, string) {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("run %v: %v\n%s", cmd.Args, err, out)
	return -1, ""
}

func TestStandaloneFindsAndDisables(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, dirtyLib)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	code, out := exitCode(t, cmd)
	if code != 2 || !strings.Contains(out, "ctxcheck") {
		t.Fatalf("standalone run: exit %d, want 2 with a ctxcheck finding\n%s", code, out)
	}

	cmd = exec.Command(bin, "-disable", "ctxcheck", "./...")
	cmd.Dir = dir
	code, out = exitCode(t, cmd)
	if code != 0 {
		t.Fatalf("standalone -disable ctxcheck: exit %d, want 0\n%s", code, out)
	}
}

func TestStandaloneCleanTree(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, cleanLib)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	code, out := exitCode(t, cmd)
	if code != 0 {
		t.Fatalf("standalone run on clean tree: exit %d, want 0\n%s", code, out)
	}
}

func TestGoVetVettool(t *testing.T) {
	bin := buildTool(t)

	dir := writeModule(t, dirtyLib)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	code, out := exitCode(t, cmd)
	if code == 0 || !strings.Contains(out, "ctxcheck") {
		t.Fatalf("go vet -vettool on dirty tree: exit %d, want nonzero with a ctxcheck finding\n%s", code, out)
	}

	dir = writeModule(t, cleanLib)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	code, out = exitCode(t, cmd)
	if code != 0 {
		t.Fatalf("go vet -vettool on clean tree: exit %d, want 0\n%s", code, out)
	}
}
