// Command dedupvet is the repo's invariant checker: a multichecker
// bundling the internal/analysis suite (collective determinism, bounded
// decoding, phase attribution, guarded-by lock annotations, context
// discipline, raw-print hygiene, lock ordering, goroutine lifetime,
// wire-codec symmetry, atomics discipline). It runs in two modes:
//
// Standalone (the Makefile/CI entry point, works without installing):
//
//	go run ./cmd/dedupvet ./...
//
// As a vet tool, speaking cmd/go's single-package vet protocol
// (-V=full, -flags, and a vet.cfg argument):
//
//	go build -o dedupvet ./cmd/dedupvet
//	go vet -vettool=./dedupvet ./...
//
// Exit status: 0 when the tree is clean, 2 when findings were reported,
// 1 on operational failure. Findings are suppressed site by site with
// `//dedupvet:<directive>` comments; see internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"strings"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/atomicfield"
	"dedupcr/internal/analysis/boundedmake"
	"dedupcr/internal/analysis/ctxcheck"
	"dedupcr/internal/analysis/determinism"
	"dedupcr/internal/analysis/gorolife"
	"dedupcr/internal/analysis/guardedby"
	"dedupcr/internal/analysis/load"
	"dedupcr/internal/analysis/lockorder"
	"dedupcr/internal/analysis/phaseattr"
	"dedupcr/internal/analysis/rawprint"
	"dedupcr/internal/analysis/wiresym"
)

// version is what -V=full reports; cmd/go hashes the line into its action
// cache, so bump it when analyzer behaviour changes.
const version = "v3"

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	boundedmake.Analyzer,
	phaseattr.Analyzer,
	guardedby.Analyzer,
	ctxcheck.Analyzer,
	rawprint.Analyzer,
	lockorder.Analyzer,
	gorolife.Analyzer,
	wiresym.Analyzer,
	atomicfield.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dedupvet", flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	listFlag := fs.Bool("list", false, "list the analyzers and exit")
	var disabled, enabled stringSet
	fs.Var(&disabled, "disable", "comma-separated analyzers to skip")
	fs.Var(&enabled, "analyzers", "comma-separated analyzers to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dedupvet [-analyzers a,b] [-disable a,b] [packages]\n       dedupvet vet.cfg   (go vet -vettool mode)\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *vFlag != "":
		// cmd/go requires `<anything> version <non-devel-version>`; it
		// hashes the whole line as the tool's build ID.
		fmt.Printf("dedupvet version %s-go\n", version)
		return 0
	case *flagsFlag:
		return printFlags()
	case *listFlag:
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		return 0
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for name := range enabled {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "dedupvet: unknown analyzer %q (run with -list for the suite)\n", name)
			return 1
		}
	}
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		active = append(active, a)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetCfg(rest[0], active)
	}
	return runPatterns(rest, active)
}

// stringSet is a comma-separated flag value.
type stringSet map[string]bool

func (s *stringSet) String() string { return "" }
func (s *stringSet) Set(v string) error {
	if *s == nil {
		*s = make(map[string]bool)
	}
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			(*s)[name] = true
		}
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printFlags emits the JSON flag description go vet's driver consumes.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{
		{Name: "disable", Bool: false, Usage: "comma-separated analyzers to skip"},
		{Name: "analyzers", Bool: false, Usage: "comma-separated analyzers to run (default: all)"},
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}

// runPatterns is standalone mode: load the matching packages with the go
// command and analyze them all.
func runPatterns(patterns []string, active []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	fset, diags, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	if len(diags) > 0 {
		analysis.Print(os.Stderr, fset, diags)
		return 2
	}
	return 0
}

// vetConfig is the package description cmd/go writes for vet tools.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// cfgImporter resolves imports through the export data cmd/go handed us,
// translating source import paths through ImportMap.
type cfgImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newCfgImporter(fset *token.FileSet, cfg *vetConfig) *cfgImporter {
	im := &cfgImporter{cfg: cfg}
	im.gc = load.NewLookupImporter(fset, func(path string) (string, error) {
		if file, ok := cfg.PackageFile[path]; ok {
			return file, nil
		}
		return "", fmt.Errorf("dedupvet: no export data for %q", path)
	})
	return im
}

func (im *cfgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return im.gc.Import(path)
}

// runVetCfg is `go vet -vettool` mode: analyze the single package the
// driver described in cfgPath.
func runVetCfg(cfgPath string, active []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dedupvet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// Facts files are not produced, but the driver caches on VetxOutput's
	// existence; an empty file keeps repeated runs fast.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dedupvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := load.Check(fset, newCfgImporter(fset, &cfg), cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	diags, err := analysis.RunPackage(pkg, active)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedupvet:", err)
		return 1
	}
	if len(diags) > 0 {
		analysis.SortDiagnostics(fset, diags)
		analysis.Print(os.Stderr, fset, diags)
		return 2
	}
	return 0
}
