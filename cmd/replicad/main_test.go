package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dedupcr/internal/metrics"
	"dedupcr/internal/telemetry"
)

// TestEndToEndMultiProcess builds the replicad binary and runs a real
// multi-process collective dump + restore over TCP sockets with
// disk-backed stores — the full deployment shape, one OS process per
// rank. One store is wiped between dump and restore to force remote
// recovery.
func TestEndToEndMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e test")
	}
	const n = 4
	dir := t.TempDir()
	bin := filepath.Join(dir, "replicad")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reserve loopback ports, then free them for the daemons.
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	hosts := filepath.Join(dir, "hosts.txt")
	if err := os.WriteFile(hosts, []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	runAll := func(verb string, extra ...string) []string {
		t.Helper()
		outputs := make([]string, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				args := []string{
					"-rank", fmt.Sprint(rank),
					"-hosts", hosts,
					"-store", filepath.Join(dir, fmt.Sprintf("node%d", rank)),
					"-k", "3",
					"-approach", "coll",
					"-chunk", "256",
					"-stats",
					"-trace", filepath.Join(dir, fmt.Sprintf("trace%d.json", rank)),
					"-cluster", filepath.Join(dir, "cluster.json"),
					verb,
				}
				args = append(args, extra...)
				cmd := exec.Command(bin, args...)
				out, err := cmd.CombinedOutput()
				outputs[rank] = string(out)
				errs[rank] = err
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d %s: %v\n%s", r, verb, err, outputs[r])
			}
		}
		return outputs
	}

	// Phase 1: collective dump of an HPCCG checkpoint (small grid), with
	// the observability surface on: per-phase line, Prometheus counters,
	// and a Chrome trace per rank.
	outs := runAll("dump", "-workload", "hpccg", "-steps", "2")
	for r, out := range outs {
		if !strings.Contains(out, "dumped") {
			t.Errorf("rank %d dump output: %q", r, out)
		}
		if !strings.Contains(out, "phases:") || !strings.Contains(out, "total=") {
			t.Errorf("rank %d dump output missing phase breakdown: %q", r, out)
		}
		if !strings.Contains(out, "dedupcr_phase_seconds") {
			t.Errorf("rank %d missing Prometheus phase metrics: %q", r, out)
		}
		if !strings.Contains(out, "dedupcr_comm_sent_bytes_total") {
			t.Errorf("rank %d missing Prometheus comm metrics: %q", r, out)
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("trace%d.json", r)))
		if err != nil {
			t.Errorf("rank %d trace file: %v", r, err)
		} else if !strings.Contains(string(data), `"traceEvents"`) {
			t.Errorf("rank %d trace file lacks traceEvents: %.80s", r, data)
		}
	}
	// Rank 0 gathered the whole group's metrics in-band: the cluster
	// table on stderr, the dedupcr_cluster_* families, and the JSON file.
	if !strings.Contains(outs[0], "cluster dump: 4 ranks") {
		t.Errorf("rank 0 missing cluster table:\n%s", outs[0])
	}
	if !strings.Contains(outs[0], "dedupcr_cluster_ranks 4") {
		t.Errorf("rank 0 missing cluster exposition:\n%s", outs[0])
	}
	var cd telemetry.ClusterDump
	cj, err := os.ReadFile(filepath.Join(dir, "cluster.json"))
	if err != nil {
		t.Fatalf("cluster JSON: %v", err)
	}
	if err := json.Unmarshal(cj, &cd); err != nil {
		t.Fatalf("cluster JSON: %v\n%s", err, cj)
	}
	if cd.Ranks != n || len(cd.PerRank) != n {
		t.Errorf("cluster JSON has %d ranks / %d summaries, want %d", cd.Ranks, len(cd.PerRank), n)
	}
	if cd.Phase("total").Max <= 0 {
		t.Errorf("cluster JSON total spread empty: %+v", cd.Phase("total"))
	}

	// Phase 2: restore with intact stores.
	outs = runAll("restore")
	for r, out := range outs {
		if !strings.Contains(out, "restored") {
			t.Errorf("rank %d restore output: %q", r, out)
		}
	}

	// Phase 3: wipe node 2's store entirely (node replacement) and
	// restore again — chunks must come over the sockets.
	if err := os.RemoveAll(filepath.Join(dir, "node2")); err != nil {
		t.Fatal(err)
	}
	outs = runAll("restore")
	for r, out := range outs {
		if !strings.Contains(out, "restored") {
			t.Errorf("rank %d post-failure restore output: %q", r, out)
		}
	}
}

// TestClusterEndpoints exercises the rank-0 telemetry HTTP surface:
// /cluster serves the latest gathered ClusterDump as JSON (503 before the
// first dump completes), /cluster/metrics serves the dedupcr_cluster_*
// Prometheus families in strict exposition format.
func TestClusterEndpoints(t *testing.T) {
	registerClusterHandlers()
	srv := httptest.NewServer(http.DefaultServeMux)
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	if code, _ := get("/cluster"); code != http.StatusServiceUnavailable {
		t.Errorf("/cluster before any dump: status %d, want 503", code)
	}
	if code, _ := get("/cluster/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/cluster/metrics before any dump: status %d, want 503", code)
	}

	// Publish a gathered dump the way doDump does on rank 0.
	dumps := make([]metrics.Dump, 3)
	for r := range dumps {
		dumps[r] = metrics.Dump{Rank: r, SentBytes: int64(1000 * (r + 1)), StoredBytes: 4096}
		dumps[r].Phases.Put = time.Duration(r+1) * 10 * time.Millisecond
		dumps[r].Phases.Total = time.Duration(r+1) * 12 * time.Millisecond
		dumps[r].BarrierExit = time.Unix(1700000000, int64(r)*1000)
	}
	cd, err := telemetry.Aggregate(dumps, telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	liveCluster.Store(cd)

	code, body := get("/cluster")
	if code != http.StatusOK {
		t.Fatalf("/cluster: status %d\n%s", code, body)
	}
	var got telemetry.ClusterDump
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("/cluster JSON: %v\n%s", err, body)
	}
	if got.Ranks != 3 || got.TotalSentBytes != 6000 {
		t.Errorf("/cluster served Ranks=%d TotalSentBytes=%d, want 3/6000", got.Ranks, got.TotalSentBytes)
	}

	code, body = get("/cluster/metrics")
	if code != http.StatusOK {
		t.Fatalf("/cluster/metrics: status %d\n%s", code, body)
	}
	if err := metrics.CheckExposition(bytes.NewReader(body)); err != nil {
		t.Errorf("/cluster/metrics exposition: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "dedupcr_cluster_ranks 3") {
		t.Errorf("/cluster/metrics missing rank count:\n%s", body)
	}
}

func TestReadHosts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hosts")
	content := "# comment\n127.0.0.1:9001\n\n127.0.0.1:9002\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	addrs, err := readHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:9001", "127.0.0.1:9002"}
	if len(addrs) != len(want) {
		t.Fatalf("got %v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("got %v, want %v", addrs, want)
		}
	}
	if _, err := readHosts(filepath.Join(dir, "empty")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readHosts(path); err == nil {
		t.Fatal("empty host list accepted")
	}
}
