package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestEndToEndMultiProcess builds the replicad binary and runs a real
// multi-process collective dump + restore over TCP sockets with
// disk-backed stores — the full deployment shape, one OS process per
// rank. One store is wiped between dump and restore to force remote
// recovery.
func TestEndToEndMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e test")
	}
	const n = 4
	dir := t.TempDir()
	bin := filepath.Join(dir, "replicad")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reserve loopback ports, then free them for the daemons.
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	hosts := filepath.Join(dir, "hosts.txt")
	if err := os.WriteFile(hosts, []byte(strings.Join(addrs, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	runAll := func(verb string, extra ...string) []string {
		t.Helper()
		outputs := make([]string, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				args := []string{
					"-rank", fmt.Sprint(rank),
					"-hosts", hosts,
					"-store", filepath.Join(dir, fmt.Sprintf("node%d", rank)),
					"-k", "3",
					"-approach", "coll",
					"-chunk", "256",
					"-stats",
					"-trace", filepath.Join(dir, fmt.Sprintf("trace%d.json", rank)),
					verb,
				}
				args = append(args, extra...)
				cmd := exec.Command(bin, args...)
				out, err := cmd.CombinedOutput()
				outputs[rank] = string(out)
				errs[rank] = err
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d %s: %v\n%s", r, verb, err, outputs[r])
			}
		}
		return outputs
	}

	// Phase 1: collective dump of an HPCCG checkpoint (small grid), with
	// the observability surface on: per-phase line, Prometheus counters,
	// and a Chrome trace per rank.
	outs := runAll("dump", "-workload", "hpccg", "-steps", "2")
	for r, out := range outs {
		if !strings.Contains(out, "dumped") {
			t.Errorf("rank %d dump output: %q", r, out)
		}
		if !strings.Contains(out, "phases:") || !strings.Contains(out, "total=") {
			t.Errorf("rank %d dump output missing phase breakdown: %q", r, out)
		}
		if !strings.Contains(out, "dedupcr_phase_seconds") {
			t.Errorf("rank %d missing Prometheus phase metrics: %q", r, out)
		}
		if !strings.Contains(out, "dedupcr_comm_sent_bytes_total") {
			t.Errorf("rank %d missing Prometheus comm metrics: %q", r, out)
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("trace%d.json", r)))
		if err != nil {
			t.Errorf("rank %d trace file: %v", r, err)
		} else if !strings.Contains(string(data), `"traceEvents"`) {
			t.Errorf("rank %d trace file lacks traceEvents: %.80s", r, data)
		}
	}

	// Phase 2: restore with intact stores.
	outs = runAll("restore")
	for r, out := range outs {
		if !strings.Contains(out, "restored") {
			t.Errorf("rank %d restore output: %q", r, out)
		}
	}

	// Phase 3: wipe node 2's store entirely (node replacement) and
	// restore again — chunks must come over the sockets.
	if err := os.RemoveAll(filepath.Join(dir, "node2")); err != nil {
		t.Fatal(err)
	}
	outs = runAll("restore")
	for r, out := range outs {
		if !strings.Contains(out, "restored") {
			t.Errorf("rank %d post-failure restore output: %q", r, out)
		}
	}
}

func TestReadHosts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hosts")
	content := "# comment\n127.0.0.1:9001\n\n127.0.0.1:9002\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	addrs, err := readHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:9001", "127.0.0.1:9002"}
	if len(addrs) != len(want) {
		t.Fatalf("got %v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("got %v, want %v", addrs, want)
		}
	}
	if _, err := readHosts(filepath.Join(dir, "empty")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readHosts(path); err == nil {
		t.Fatal("empty host list accepted")
	}
}
