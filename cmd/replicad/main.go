// Command replicad runs one rank of a real multi-process collective dump
// over TCP sockets — the deployment mode where every rank is its own OS
// process (possibly on different machines) with a disk-backed local
// store, exercising the exact code path an MPI job would.
//
// Start N processes with the same host file (one "host:port" per line,
// line i = rank i) and the same options:
//
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 -k 3 dump -workload hpccg
//	replicad -rank 1 -hosts hosts.txt -store /tmp/node1 -k 3 dump -workload hpccg
//	...
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 restore -out ck.bin
//
// The dump verb either checkpoints a generated workload (-workload
// hpccg|cm1) or dumps a file (-in path); restore reassembles the dataset
// (pulling remotely replicated chunks if the local store was wiped).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"dedupcr/internal/apps/cm1"
	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicad: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rank := flag.Int("rank", -1, "this process's rank")
	hosts := flag.String("hosts", "", "host file: one host:port per line, line i = rank i")
	storeDir := flag.String("store", "", "local store directory (default: in-memory)")
	k := flag.Int("k", 3, "replication factor")
	approach := flag.String("approach", "coll", "no | local | coll")
	name := flag.String("name", "ckpt", "dataset name")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of this rank's run to this file")
	stats := flag.Bool("stats", false, "dump Prometheus-style counters to stderr on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: replicad -rank R -hosts FILE [flags] dump|restore [verb flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *rank < 0 || *hosts == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	addrs, err := readHosts(*hosts)
	if err != nil {
		return err
	}
	if *rank >= len(addrs) {
		return fmt.Errorf("rank %d out of range for %d hosts", *rank, len(addrs))
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "replicad: pprof: %v\n", err)
			}
		}()
	}

	var store storage.Store
	if *storeDir != "" {
		store, err = storage.NewDisk(*storeDir)
		if err != nil {
			return err
		}
	} else {
		store = storage.NewMem()
	}
	// With -stats, every store operation's latency is histogrammed so the
	// exit dump can report device-side quantiles next to the phase times.
	var timed *storage.Timed
	if *stats {
		timed = storage.NewTimed(store)
		store = timed
	}

	var tr *trace.Trace
	var rec *trace.Recorder
	if *traceOut != "" {
		tr = trace.New()
		tr.NamePid(1, "replicad")
		rec = tr.Recorder(1, *rank, fmt.Sprintf("rank %d", *rank))
	}

	comm, err := collectives.DialTCP(*rank, addrs)
	if err != nil {
		return err
	}
	defer comm.Close()

	var ap core.Approach
	switch *approach {
	case "no":
		ap = core.NoDedup
	case "local":
		ap = core.LocalDedup
	case "coll":
		ap = core.CollDedup
	default:
		return fmt.Errorf("unknown approach %q", *approach)
	}
	opts := core.Options{K: *k, Approach: ap, ChunkSize: *chunkSize, Name: *name, Trace: rec}

	verb := flag.Arg(0)
	verbArgs := flag.Args()[1:]
	switch verb {
	case "dump":
		err = doDump(comm, store, opts, verbArgs, *stats)
	case "restore":
		err = doRestore(comm, store, *name, verbArgs, rec)
	default:
		return fmt.Errorf("unknown verb %q (want dump or restore)", verb)
	}
	if err != nil {
		return err
	}
	if *stats {
		writeCommStats(os.Stderr, *rank, comm.Stats())
		writeStoreStats(os.Stderr, *rank, timed)
	}
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "replicad: wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
	}
	return nil
}

// writeCommStats emits the transport counters in Prometheus exposition
// format, per-peer counters included.
func writeCommStats(w io.Writer, rank int, s collectives.Stats) {
	label := fmt.Sprintf("rank=%q", fmt.Sprint(rank))
	fmt.Fprintln(w, "# TYPE dedupcr_comm_sent_bytes_total counter")
	fmt.Fprintf(w, "dedupcr_comm_sent_bytes_total{%s} %d\n", label, s.BytesSent)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_recv_bytes_total counter")
	fmt.Fprintf(w, "dedupcr_comm_recv_bytes_total{%s} %d\n", label, s.BytesRecv)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_sent_msgs_total counter")
	fmt.Fprintf(w, "dedupcr_comm_sent_msgs_total{%s} %d\n", label, s.MsgsSent)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_recv_msgs_total counter")
	fmt.Fprintf(w, "dedupcr_comm_recv_msgs_total{%s} %d\n", label, s.MsgsRecv)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_collective_ops_total counter")
	fmt.Fprintf(w, "dedupcr_comm_collective_ops_total{%s} %d\n", label, s.CollOps)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_collective_rounds_total counter")
	fmt.Fprintf(w, "dedupcr_comm_collective_rounds_total{%s} %d\n", label, s.CollRounds)
	fmt.Fprintln(w, "# TYPE dedupcr_comm_collective_seconds_total counter")
	fmt.Fprintf(w, "dedupcr_comm_collective_seconds_total{%s} %g\n", label, s.CollTime.Seconds())
	if len(s.Peers) > 0 {
		fmt.Fprintln(w, "# TYPE dedupcr_comm_peer_sent_bytes_total counter")
		for p, ps := range s.Peers {
			if ps.BytesSent != 0 || ps.MsgsSent != 0 {
				fmt.Fprintf(w, "dedupcr_comm_peer_sent_bytes_total{%s,peer=\"%d\"} %d\n", label, p, ps.BytesSent)
			}
		}
		fmt.Fprintln(w, "# TYPE dedupcr_comm_peer_recv_bytes_total counter")
		for p, ps := range s.Peers {
			if ps.BytesRecv != 0 || ps.MsgsRecv != 0 {
				fmt.Fprintf(w, "dedupcr_comm_peer_recv_bytes_total{%s,peer=\"%d\"} %d\n", label, p, ps.BytesRecv)
			}
		}
	}
}

// writeStoreStats emits store read/write latency summaries.
func writeStoreStats(w io.Writer, rank int, t *storage.Timed) {
	if t == nil {
		return
	}
	emit := func(name string, h *metrics.Histogram) {
		if h.Count() == 0 {
			return
		}
		label := fmt.Sprintf("rank=%q", fmt.Sprint(rank))
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s{%s,quantile=\"%g\"} %g\n", name, label, q,
				float64(h.Quantile(q))/1e9)
		}
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.Count())
	}
	emit("dedupcr_store_read_latency_seconds", t.ReadLatency())
	emit("dedupcr_store_write_latency_seconds", t.WriteLatency())
}

func doDump(comm collectives.Comm, store storage.Store, opts core.Options, args []string, stats bool) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	workload := fs.String("workload", "", "generate a workload checkpoint: hpccg | cm1")
	in := fs.String("in", "", "dump this file instead of a generated workload")
	steps := fs.Int("steps", 8, "solver steps before the checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var buf []byte
	switch {
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		buf = data
	case *workload == "hpccg":
		app := hpccg.New(comm.Rank(), comm.Size(), hpccg.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	case *workload == "cm1":
		app := cm1.New(comm.Rank(), comm.Size(), cm1.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	default:
		return fmt.Errorf("dump needs -workload hpccg|cm1 or -in FILE")
	}

	res, err := core.DumpOutput(comm, store, buf, opts)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("rank %d: dumped %d bytes (%d chunks, %d locally unique); stored %d, sent %d, received %d\n",
		comm.Rank(), m.DatasetBytes, m.TotalChunks, m.LocalUniqueChunks,
		m.StoredBytes, m.SentBytes, m.RecvBytes)
	fmt.Printf("rank %d: phases:", comm.Rank())
	for _, name := range metrics.PhaseNames {
		if d := m.Phases.ByName(name); d > 0 {
			fmt.Printf(" %s=%s", name, metrics.Duration(d))
		}
	}
	fmt.Printf(" total=%s\n", metrics.Duration(m.Phases.Total))
	if stats {
		m.WritePrometheus(os.Stderr)
	}
	return nil
}

func doRestore(comm collectives.Comm, store storage.Store, name string, args []string, rec *trace.Recorder) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	out := fs.String("out", "", "write the restored dataset to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	buf, err := core.RestoreWithTrace(comm, store, name, rec)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: restored %d bytes of %q\n", comm.Rank(), len(buf), name)
	if *out != "" {
		return os.WriteFile(*out, buf, 0o644)
	}
	return nil
}

func readHosts(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("host file %s is empty", path)
	}
	return addrs, nil
}
