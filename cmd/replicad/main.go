// Command replicad runs one rank of a real multi-process collective dump
// over TCP sockets — the deployment mode where every rank is its own OS
// process (possibly on different machines) with a disk-backed local
// store, exercising the exact code path an MPI job would.
//
// Start N processes with the same host file (one "host:port" per line,
// line i = rank i) and the same options:
//
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 -k 3 dump -workload hpccg
//	replicad -rank 1 -hosts hosts.txt -store /tmp/node1 -k 3 dump -workload hpccg
//	...
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 restore -out ck.bin
//
// The dump verb either checkpoints a generated workload (-workload
// hpccg|cm1) or dumps a file (-in path); restore reassembles the dataset
// (pulling remotely replicated chunks if the local store was wiped).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dedupcr/internal/apps/cm1"
	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicad: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rank := flag.Int("rank", -1, "this process's rank")
	hosts := flag.String("hosts", "", "host file: one host:port per line, line i = rank i")
	storeDir := flag.String("store", "", "local store directory (default: in-memory)")
	k := flag.Int("k", 3, "replication factor")
	approach := flag.String("approach", "coll", "no | local | coll")
	name := flag.String("name", "ckpt", "dataset name")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: replicad -rank R -hosts FILE [flags] dump|restore [verb flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *rank < 0 || *hosts == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	addrs, err := readHosts(*hosts)
	if err != nil {
		return err
	}
	if *rank >= len(addrs) {
		return fmt.Errorf("rank %d out of range for %d hosts", *rank, len(addrs))
	}

	var store storage.Store
	if *storeDir != "" {
		store, err = storage.NewDisk(*storeDir)
		if err != nil {
			return err
		}
	} else {
		store = storage.NewMem()
	}

	comm, err := collectives.DialTCP(*rank, addrs)
	if err != nil {
		return err
	}
	defer comm.Close()

	var ap core.Approach
	switch *approach {
	case "no":
		ap = core.NoDedup
	case "local":
		ap = core.LocalDedup
	case "coll":
		ap = core.CollDedup
	default:
		return fmt.Errorf("unknown approach %q", *approach)
	}
	opts := core.Options{K: *k, Approach: ap, ChunkSize: *chunkSize, Name: *name}

	verb := flag.Arg(0)
	verbArgs := flag.Args()[1:]
	switch verb {
	case "dump":
		return doDump(comm, store, opts, verbArgs)
	case "restore":
		return doRestore(comm, store, *name, verbArgs)
	default:
		return fmt.Errorf("unknown verb %q (want dump or restore)", verb)
	}
}

func doDump(comm collectives.Comm, store storage.Store, opts core.Options, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	workload := fs.String("workload", "", "generate a workload checkpoint: hpccg | cm1")
	in := fs.String("in", "", "dump this file instead of a generated workload")
	steps := fs.Int("steps", 8, "solver steps before the checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var buf []byte
	switch {
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		buf = data
	case *workload == "hpccg":
		app := hpccg.New(comm.Rank(), comm.Size(), hpccg.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	case *workload == "cm1":
		app := cm1.New(comm.Rank(), comm.Size(), cm1.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	default:
		return fmt.Errorf("dump needs -workload hpccg|cm1 or -in FILE")
	}

	res, err := core.DumpOutput(comm, store, buf, opts)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("rank %d: dumped %d bytes (%d chunks, %d locally unique); stored %d, sent %d, received %d\n",
		comm.Rank(), m.DatasetBytes, m.TotalChunks, m.LocalUniqueChunks,
		m.StoredBytes, m.SentBytes, m.RecvBytes)
	return nil
}

func doRestore(comm collectives.Comm, store storage.Store, name string, args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	out := fs.String("out", "", "write the restored dataset to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	buf, err := core.Restore(comm, store, name)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: restored %d bytes of %q\n", comm.Rank(), len(buf), name)
	if *out != "" {
		return os.WriteFile(*out, buf, 0o644)
	}
	return nil
}

func readHosts(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("host file %s is empty", path)
	}
	return addrs, nil
}
