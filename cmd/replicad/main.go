// Command replicad runs one rank of a real multi-process collective dump
// over TCP sockets — the deployment mode where every rank is its own OS
// process (possibly on different machines) with a disk-backed local
// store, exercising the exact code path an MPI job would.
//
// Start N processes with the same host file (one "host:port" per line,
// line i = rank i) and the same options:
//
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 -k 3 dump -workload hpccg
//	replicad -rank 1 -hosts hosts.txt -store /tmp/node1 -k 3 dump -workload hpccg
//	...
//	replicad -rank 0 -hosts hosts.txt -store /tmp/node0 restore -out ck.bin
//
// The dump verb either checkpoints a generated workload (-workload
// hpccg|cm1) or dumps a file (-in path); restore reassembles the dataset
// (pulling remotely replicated chunks if the local store was wiped).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dedupcr/internal/apps/cm1"
	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"
)

// liveCluster, liveRestore and liveStore hold the latest in-band
// ClusterDump / ClusterRestore / ClusterStore for the HTTP endpoints.
// Only rank 0 ever publishes (the gathers deliver there); other ranks'
// endpoints stay 503.
var (
	liveCluster atomic.Pointer[telemetry.ClusterDump]
	liveRestore atomic.Pointer[telemetry.ClusterRestore]
	liveStore   atomic.Pointer[telemetry.ClusterStore]
)

// registerClusterHandlers wires the cluster telemetry endpoints onto the
// default mux (served by the -pprof debug address): /cluster and
// /restore return the latest ClusterDump / ClusterRestore as JSON,
// /cluster/metrics and /restore/metrics as Prometheus expositions of
// the dedupcr_cluster_* and dedupcr_cluster_restore_* families.
func registerClusterHandlers() {
	http.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		cd := liveCluster.Load()
		if cd == nil {
			http.Error(w, "no cluster dump gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cd)
	})
	http.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		cd := liveCluster.Load()
		if cd == nil {
			http.Error(w, "no cluster dump gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		cd.WritePrometheus(w)
	})
	http.HandleFunc("/restore", func(w http.ResponseWriter, r *http.Request) {
		cr := liveRestore.Load()
		if cr == nil {
			http.Error(w, "no cluster restore gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cr)
	})
	http.HandleFunc("/restore/metrics", func(w http.ResponseWriter, r *http.Request) {
		cr := liveRestore.Load()
		if cr == nil {
			http.Error(w, "no cluster restore gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		cr.WritePrometheus(w)
	})
	http.HandleFunc("/store", func(w http.ResponseWriter, r *http.Request) {
		cs := liveStore.Load()
		if cs == nil {
			http.Error(w, "no cluster store stats gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cs)
	})
	http.HandleFunc("/store/metrics", func(w http.ResponseWriter, r *http.Request) {
		cs := liveStore.Load()
		if cs == nil {
			http.Error(w, "no cluster store stats gathered yet (rank 0 only)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		cs.WritePrometheus(w)
	})
}

// registerFlightHandlers wires the flight-recorder endpoints onto the
// default mux: /debug/flight streams the ring's committed window as
// JSONL (?n=N limits to the last N events), /debug/bundle triggers a
// post-mortem bundle on demand and reports its path.
func registerFlightHandlers(rank int) {
	http.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		rec := obs.Default()
		evs := rec.Events()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 {
				evs = rec.Tail(n)
			}
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.Header().Set("X-Dedupcr-Obs-Dropped", fmt.Sprint(rec.Dropped()))
		enc := json.NewEncoder(w)
		for _, e := range evs {
			enc.Encode(e)
		}
	})
	http.HandleFunc("/debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		path, ok := obs.Trigger(obs.Failure{
			Kind:  "manual",
			Rank:  rank,
			Cause: "requested via /debug/bundle",
		})
		if !ok {
			http.Error(w, "bundle not written (no -bundle-dir configured, or a bundle was written within the last second)",
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, path)
	})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicad: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rank := flag.Int("rank", -1, "this process's rank")
	hosts := flag.String("hosts", "", "host file: one host:port per line, line i = rank i")
	storeDir := flag.String("store", "", "local store directory (default: in-memory)")
	engine := flag.String("engine", "auto", "store engine: auto | mem | disk | seg (auto = seg when -store is set, mem otherwise; disk is the flat one-file-per-chunk engine)")
	k := flag.Int("k", 3, "replication factor")
	approach := flag.String("approach", "coll", "no | local | coll")
	name := flag.String("name", "ckpt", "dataset name")
	chunkSize := flag.Int("chunk", 4096, "chunk size in bytes (target average for cdc/gear; all ranks must agree)")
	chunker := flag.String("chunker", "fixed", "chunking algorithm: fixed, cdc or gear (all ranks must agree)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof plus the /cluster and /restore telemetry endpoints (JSON and /metrics) on this address (e.g. localhost:6060)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of this rank's run to this file")
	wireTrace := flag.Bool("wire-trace", false, "with -trace: stamp outgoing frames with trace context and draw causal send->recv flow arrows (all ranks must agree)")
	jobID := flag.Uint64("job", 0, "wire-trace job id stamped into frame trace contexts (0 = derived from the dataset name; all ranks must agree)")
	bundleDir := flag.String("bundle-dir", os.Getenv("DEDUPCR_BUNDLE_DIR"), "write post-mortem failure bundles under this directory (default $DEDUPCR_BUNDLE_DIR; empty disables)")
	stats := flag.Bool("stats", false, "dump Prometheus-style counters to stderr on exit")
	legacyPutSummary := flag.Bool("legacy-put-summary", false, "expose put latency as the old quantile summary instead of the bucketed histogram")
	clusterOut := flag.String("cluster", "", "rank 0: write the gathered cluster telemetry JSON (ClusterDump for dump, ClusterRestore for restore) to this file")
	timeout := flag.Duration("timeout", 0, "abort the collective operation after this long (0 = no deadline); on expiry every rank unblocks with a collective error")
	retries := flag.Int("retries", 1, "attempts per window put; transient transport failures are retried up to this many times")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "sleep before the first put retry, doubling per retry")
	putTimeout := flag.Duration("put-timeout", 0, "deadline per window put attempt (0 = unbounded); timed-out puts count as transient")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: replicad -rank R -hosts FILE [flags] dump|restore [verb flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *rank < 0 || *hosts == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	addrs, err := readHosts(*hosts)
	if err != nil {
		return err
	}
	if *rank >= len(addrs) {
		return fmt.Errorf("rank %d out of range for %d hosts", *rank, len(addrs))
	}

	if *bundleDir != "" {
		obs.SetBundleDir(*bundleDir)
	}
	// Post-mortem bundles attach the transport and store state alongside
	// the flight-recorder events; the closures read whatever is current
	// at trigger time.
	var bundleComm collectives.Comm
	obs.RegisterSnapshot("comm-stats", func() any {
		if bundleComm == nil {
			return nil
		}
		return bundleComm.Stats()
	})
	var bundleStore storage.Store
	obs.RegisterSnapshot("store-stats", func() any {
		if bundleStore == nil {
			return nil
		}
		ss, ok := storage.SegStatsOf(bundleStore)
		if !ok {
			return nil
		}
		return ss
	})

	if *pprofAddr != "" {
		registerClusterHandlers()
		registerFlightHandlers(*rank)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "replicad: pprof: %v\n", err)
			}
		}()
	}

	var store storage.Store
	eng := *engine
	if eng == "auto" {
		if *storeDir != "" {
			eng = "seg"
		} else {
			eng = "mem"
		}
	}
	switch eng {
	case "mem":
		store = storage.NewMem()
	case "disk":
		if *storeDir == "" {
			return fmt.Errorf("-engine disk needs -store DIR")
		}
		store, err = storage.NewDisk(*storeDir)
		if err != nil {
			return err
		}
	case "seg":
		if *storeDir == "" {
			return fmt.Errorf("-engine seg needs -store DIR")
		}
		seg, serr := storage.NewSegStore(*storeDir, storage.SegConfig{AutoCompact: true})
		if serr != nil {
			return serr
		}
		// Close seals and commits whatever the run left uncommitted and
		// stops the background compactor before the process exits.
		defer seg.Close()
		store = seg
	default:
		return fmt.Errorf("unknown engine %q (want auto, mem, disk or seg)", *engine)
	}
	// With -stats, every store operation's latency is histogrammed so the
	// exit dump can report device-side quantiles next to the phase times.
	var timed *storage.Timed
	if *stats {
		timed = storage.NewTimed(store)
		store = timed
	}
	bundleStore = store

	var tr *trace.Trace
	var rec *trace.Recorder
	if *traceOut != "" {
		tr = trace.New()
		tr.NamePid(1, "replicad")
		rec = tr.Recorder(1, *rank, fmt.Sprintf("rank %d", *rank))
	}

	comm, err := collectives.DialTCP(*rank, addrs)
	if err != nil {
		return err
	}
	defer comm.Close()
	bundleComm = comm
	if *wireTrace {
		if rec == nil {
			return fmt.Errorf("-wire-trace needs -trace FILE (the flow arrows land in the Chrome trace)")
		}
		id := *jobID
		if id == 0 {
			h := fnv.New64a()
			h.Write([]byte(*name))
			id = h.Sum64()
		}
		comm.EnableWireTrace(id, 0, rec)
	}

	var ap core.Approach
	switch *approach {
	case "no":
		ap = core.NoDedup
	case "local":
		ap = core.LocalDedup
	case "coll":
		ap = core.CollDedup
	default:
		return fmt.Errorf("unknown approach %q", *approach)
	}
	algo, err := chunk.ParseAlgo(*chunker)
	if err != nil {
		return err
	}
	opts := core.Options{
		K: *k, Approach: ap, Chunker: chunk.Spec{Algo: algo, Size: *chunkSize},
		Name: *name, Trace: rec,
		Retry: core.RetryPolicy{Attempts: *retries, Backoff: *retryBackoff, PutTimeout: *putTimeout},
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	verb := flag.Arg(0)
	verbArgs := flag.Args()[1:]
	switch verb {
	case "dump":
		err = doDump(ctx, comm, store, opts, verbArgs, dumpOutputs{
			stats:      *stats,
			promOpts:   metrics.PromOptions{LegacyPutSummary: *legacyPutSummary},
			clusterOut: *clusterOut,
		})
	case "restore":
		err = doRestore(ctx, comm, store, *name, verbArgs, rec, restoreOutputs{
			stats:      *stats,
			clusterOut: *clusterOut,
		})
	default:
		return fmt.Errorf("unknown verb %q (want dump or restore)", verb)
	}
	if err != nil {
		return err
	}
	if *stats {
		writeCommStats(os.Stderr, *rank, comm.Stats())
		writeStoreStats(os.Stderr, *rank, timed)
		if ss, ok := storage.SegStatsOf(store); ok {
			ss.Rank = *rank
			ss.WritePrometheus(os.Stderr)
		}
		obs.Default().WritePrometheus(os.Stderr, *rank)
		if tr != nil {
			tr.WritePrometheus(os.Stderr, *rank)
		}
	}
	if tr != nil {
		if err := tr.WriteFile(*traceOut); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "replicad: wrote %d trace events to %s\n", len(tr.Events()), *traceOut)
	}
	return nil
}

// writeCommStats emits the transport counters in Prometheus exposition
// format, per-peer counters included.
func writeCommStats(w io.Writer, rank int, s collectives.Stats) {
	label := fmt.Sprintf("rank=%q", fmt.Sprint(rank))
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n", name, help, name, name, label, v)
	}
	counter("dedupcr_comm_sent_bytes_total", "Transport bytes this rank sent.", s.BytesSent)
	counter("dedupcr_comm_recv_bytes_total", "Transport bytes this rank received.", s.BytesRecv)
	counter("dedupcr_comm_sent_msgs_total", "Transport messages this rank sent.", s.MsgsSent)
	counter("dedupcr_comm_recv_msgs_total", "Transport messages this rank received.", s.MsgsRecv)
	counter("dedupcr_comm_collective_ops_total", "Collective calls this rank entered.", s.CollOps)
	counter("dedupcr_comm_collective_rounds_total", "Collective rounds this rank ran.", s.CollRounds)
	fmt.Fprintln(w, "# HELP dedupcr_comm_collective_seconds_total Wall time this rank spent inside collectives.")
	fmt.Fprintln(w, "# TYPE dedupcr_comm_collective_seconds_total counter")
	fmt.Fprintf(w, "dedupcr_comm_collective_seconds_total{%s} %g\n", label, s.CollTime.Seconds())
	if len(s.Peers) > 0 {
		fmt.Fprintln(w, "# HELP dedupcr_comm_peer_sent_bytes_total Transport bytes this rank sent to one peer.")
		fmt.Fprintln(w, "# TYPE dedupcr_comm_peer_sent_bytes_total counter")
		for p, ps := range s.Peers {
			if ps.BytesSent != 0 || ps.MsgsSent != 0 {
				fmt.Fprintf(w, "dedupcr_comm_peer_sent_bytes_total{%s,peer=\"%d\"} %d\n", label, p, ps.BytesSent)
			}
		}
		fmt.Fprintln(w, "# HELP dedupcr_comm_peer_recv_bytes_total Transport bytes this rank received from one peer.")
		fmt.Fprintln(w, "# TYPE dedupcr_comm_peer_recv_bytes_total counter")
		for p, ps := range s.Peers {
			if ps.BytesRecv != 0 || ps.MsgsRecv != 0 {
				fmt.Fprintf(w, "dedupcr_comm_peer_recv_bytes_total{%s,peer=\"%d\"} %d\n", label, p, ps.BytesRecv)
			}
		}
	}
}

// writeStoreStats emits store read/write latency histograms on the
// shared metrics.LatencyBuckets ladder (aggregable across ranks).
func writeStoreStats(w io.Writer, rank int, t *storage.Timed) {
	if t == nil {
		return
	}
	emit := func(name, help string, h *metrics.Histogram) {
		label := fmt.Sprintf("rank=%q", fmt.Sprint(rank))
		metrics.WriteLatencyHistogram(w, name, help, label, h)
	}
	emit("dedupcr_store_read_latency_seconds", "Local store read latency.", t.ReadLatency())
	emit("dedupcr_store_write_latency_seconds", "Local store write latency.", t.WriteLatency())
}

// dumpOutputs bundles doDump's reporting knobs.
type dumpOutputs struct {
	stats      bool
	promOpts   metrics.PromOptions
	clusterOut string
}

func doDump(ctx context.Context, comm collectives.Comm, store storage.Store, opts core.Options, args []string, out dumpOutputs) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	workload := fs.String("workload", "", "generate a workload checkpoint: hpccg | cm1")
	in := fs.String("in", "", "dump this file instead of a generated workload")
	steps := fs.Int("steps", 8, "solver steps before the checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var buf []byte
	switch {
	case *in != "":
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		buf = data
	case *workload == "hpccg":
		app := hpccg.New(comm.Rank(), comm.Size(), hpccg.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	case *workload == "cm1":
		app := cm1.New(comm.Rank(), comm.Size(), cm1.Config{})
		for i := 0; i < *steps; i++ {
			app.Step()
		}
		buf = app.CheckpointImage()
	default:
		return fmt.Errorf("dump needs -workload hpccg|cm1 or -in FILE")
	}

	res, err := core.DumpOutputCtx(ctx, comm, store, buf, opts)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("rank %d: dumped %d bytes (%d chunks, %d locally unique); stored %d, sent %d, received %d\n",
		comm.Rank(), m.DatasetBytes, m.TotalChunks, m.LocalUniqueChunks,
		m.StoredBytes, m.SentBytes, m.RecvBytes)
	fmt.Printf("rank %d: phases:", comm.Rank())
	for _, name := range metrics.PhaseNames {
		if d := m.Phases.ByName(name); d > 0 {
			fmt.Printf(" %s=%s", name, metrics.Duration(d))
		}
	}
	fmt.Printf(" total=%s\n", metrics.Duration(m.Phases.Total))
	if m.PutRetries > 0 {
		fmt.Printf("rank %d: %d window puts retried after transient faults\n", comm.Rank(), m.PutRetries)
	}
	if out.stats {
		m.WritePrometheusOpts(os.Stderr, out.promOpts)
	}

	// Gather the whole group's metrics to rank 0 in-band. Every rank
	// enters the collective unconditionally (the flags may differ per
	// invocation; a one-sided gather would hang), rank 0 publishes.
	cd, err := telemetry.GatherCluster(comm, m, telemetry.Options{})
	if err != nil {
		return err
	}
	if cd != nil {
		liveCluster.Store(cd)
		if out.stats {
			fmt.Fprintln(os.Stderr)
			cd.WriteText(os.Stderr)
			cd.WritePrometheus(os.Stderr)
		}
		if out.clusterOut != "" {
			data, err := json.MarshalIndent(cd, "", "  ")
			if err == nil {
				err = os.WriteFile(out.clusterOut, data, 0o644)
			}
			if err != nil {
				return fmt.Errorf("write cluster dump: %w", err)
			}
			fmt.Printf("rank 0: wrote cluster dump of %d ranks to %s\n", cd.Ranks, out.clusterOut)
		}
	}

	// Gather the storage-plane view the same way. Every rank enters
	// unconditionally — ranks on non-segment engines contribute the zero
	// snapshot (SegStatsOf reports ok=false), so mixed-engine groups
	// still converge.
	ss, _ := storage.SegStatsOf(store)
	ss.Rank = comm.Rank()
	cs, err := telemetry.GatherClusterStore(comm, ss)
	if err != nil {
		return err
	}
	if cs != nil {
		liveStore.Store(cs)
		if out.stats && cs.Total.Segments > 0 {
			fmt.Fprintln(os.Stderr)
			cs.WriteText(os.Stderr)
			cs.WritePrometheus(os.Stderr)
		}
	}
	return nil
}

// restoreOutputs bundles doRestore's reporting knobs.
type restoreOutputs struct {
	stats      bool
	clusterOut string
}

func doRestore(ctx context.Context, comm collectives.Comm, store storage.Store, name string, args []string, rec *trace.Recorder, out restoreOutputs) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	outFile := fs.String("out", "", "write the restored dataset to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.RestoreOutputCtx(ctx, comm, store, name, rec)
	if err != nil {
		return err
	}
	m := res.Metrics
	fmt.Printf("rank %d: restored %d bytes of %q (%d chunks: %d local, %d fetched from %d peers; read amp %.3fx)\n",
		comm.Rank(), m.LogicalBytes, name, m.TotalChunks, m.LocalChunks,
		m.FetchedChunks, m.SourceRanks, m.ReadAmplificationBytes())
	fmt.Printf("rank %d: phases:", comm.Rank())
	for _, pn := range metrics.RestorePhaseNames {
		if d := m.Phases.ByName(pn); d > 0 {
			fmt.Printf(" %s=%s", pn, metrics.Duration(d))
		}
	}
	fmt.Printf(" total=%s\n", metrics.Duration(m.Phases.Total))
	if out.stats {
		m.WritePrometheus(os.Stderr)
	}

	// Gather the whole group's restore metrics to rank 0 in-band. As in
	// doDump, every rank enters the collective unconditionally (a
	// one-sided gather would hang), rank 0 publishes.
	cr, err := telemetry.GatherClusterRestore(comm, m, telemetry.Options{})
	if err != nil {
		return err
	}
	if cr != nil {
		liveRestore.Store(cr)
		if out.stats {
			fmt.Fprintln(os.Stderr)
			cr.WriteText(os.Stderr)
			cr.WritePrometheus(os.Stderr)
		}
		if out.clusterOut != "" {
			data, err := json.MarshalIndent(cr, "", "  ")
			if err == nil {
				err = os.WriteFile(out.clusterOut, data, 0o644)
			}
			if err != nil {
				return fmt.Errorf("write cluster restore: %w", err)
			}
			fmt.Printf("rank 0: wrote cluster restore of %d ranks to %s\n", cr.Ranks, out.clusterOut)
		}
	}
	if *outFile != "" {
		return os.WriteFile(*outFile, res.Data, 0o644)
	}
	return nil
}

func readHosts(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var addrs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addrs = append(addrs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("host file %s is empty", path)
	}
	return addrs, nil
}
