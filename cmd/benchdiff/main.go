// Command benchdiff gates benchmark regressions in CI.
//
// It parses the output of `go test -bench` (read from a file or stdin),
// compares each benchmark's wall time against a checked-in baseline, and
// exits non-zero when a *gated* benchmark regressed beyond the allowed
// threshold. Non-gated benchmarks only warn, so the gate tracks the
// artifacts the paper's claims rest on (Figure 3a, Table I) without
// flaking on the long tail.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' | tee bench.txt
//	benchdiff -baseline BENCH_BASELINE.json bench.txt
//	benchdiff -baseline BENCH_BASELINE.json -update bench.txt   # refresh
//
// The baseline file records the threshold, the gated benchmark names and
// the reference ns/op values:
//
//	{
//	  "threshold": 0.15,
//	  "gate": ["Fig3aUniqueContent", "Table1CompletionTime"],
//	  "ns_per_op": {"Fig3aUniqueContent": 123456, ...}
//	}
//
// -update rewrites ns_per_op from the measured run but preserves the
// threshold and gate list, so refreshing the baseline after an accepted
// performance change is one command.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in reference the gate compares against.
type Baseline struct {
	// Threshold is the allowed fractional slowdown for gated benchmarks
	// (0.15 = fail when >15% slower than the baseline).
	Threshold float64 `json:"threshold"`
	// Gate lists the benchmark names (Benchmark prefix and -N suffix
	// stripped) whose regression fails the build.
	Gate []string `json:"gate"`
	// NsPerOp maps benchmark name to the reference wall time.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// parseBench extracts name → ns/op from `go test -bench` output. Lines
// look like:
//
//	BenchmarkFig3aUniqueContent-4    1    123456789 ns/op    ...
//
// The Benchmark prefix and the -GOMAXPROCS suffix are stripped so results
// compare across machines with different core counts.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Find the "ns/op" unit and take the value before it.
		var ns float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
				}
				ns, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// diff compares results against the baseline and returns the report lines
// plus whether any gated benchmark fails the gate.
func diff(base *Baseline, results map[string]float64) (lines []string, failed bool) {
	gated := make(map[string]bool, len(base.Gate))
	for _, g := range base.Gate {
		gated[g] = true
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		got := results[n]
		ref, ok := base.NsPerOp[n]
		if !ok {
			lines = append(lines, fmt.Sprintf("NEW   %-36s %14.0f ns/op (no baseline; run -update)", n, got))
			continue
		}
		delta := (got - ref) / ref
		status := "ok   "
		if delta > base.Threshold {
			if gated[n] {
				status = "FAIL "
				failed = true
			} else {
				status = "warn "
			}
		}
		lines = append(lines, fmt.Sprintf("%s %-36s %14.0f ns/op  baseline %14.0f  %+6.1f%%", status, n, got, ref, 100*delta))
	}
	// A gated benchmark that vanished from the run must fail too:
	// otherwise deleting a benchmark silently disables its gate.
	for _, g := range base.Gate {
		if _, ok := results[g]; !ok {
			lines = append(lines, fmt.Sprintf("FAIL  %-36s missing from benchmark output (gated)", g))
			failed = true
		}
	}
	return lines, failed
}

func run(baselinePath string, update bool, in io.Reader, out io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchdiff: read baseline: %w", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchdiff: parse baseline %s: %w", baselinePath, err)
	}
	if base.Threshold <= 0 {
		return fmt.Errorf("benchdiff: baseline threshold %v must be positive", base.Threshold)
	}
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchdiff: no benchmark results in input")
	}
	if update {
		base.NsPerOp = results
		enc, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(enc, '\n'), 0o644); err != nil {
			return fmt.Errorf("benchdiff: write baseline: %w", err)
		}
		fmt.Fprintf(out, "updated %s with %d benchmarks\n", baselinePath, len(results))
		return nil
	}
	lines, failed := diff(&base, results)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if failed {
		return fmt.Errorf("benchdiff: gated benchmark regressed beyond %.0f%% (or is missing)", 100*base.Threshold)
	}
	fmt.Fprintf(out, "all gated benchmarks within %.0f%% of baseline\n", 100*base.Threshold)
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON to compare against")
	update := flag.Bool("update", false, "rewrite the baseline's ns_per_op from the measured run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-update] -baseline BENCH_BASELINE.json [bench-output.txt]\n")
		fmt.Fprintf(os.Stderr, "reads `go test -bench` output from the file argument or stdin\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if err := run(*baselinePath, *update, in, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
}
