package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: dedupcr
BenchmarkFig3aUniqueContent-4            1        100000000 ns/op
BenchmarkTable1CompletionTime            1        200000000 ns/op           123 B/op          4 allocs/op
BenchmarkFig4aHPCCGTimeVsK-16            1         50000000 ns/op
PASS
ok      dedupcr 3.210s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Fig3aUniqueContent":   100000000,
		"Table1CompletionTime": 200000000,
		"Fig4aHPCCGTimeVsK":    50000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func testBaseline() *Baseline {
	return &Baseline{
		Threshold: 0.15,
		Gate:      []string{"Fig3aUniqueContent", "Table1CompletionTime"},
		NsPerOp: map[string]float64{
			"Fig3aUniqueContent":   100000000,
			"Table1CompletionTime": 200000000,
			"Fig4aHPCCGTimeVsK":    50000000,
		},
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	results := map[string]float64{
		"Fig3aUniqueContent":   110000000, // +10%, under 15%
		"Table1CompletionTime": 190000000, // faster
		"Fig4aHPCCGTimeVsK":    50000000,
	}
	lines, failed := diff(testBaseline(), results)
	if failed {
		t.Errorf("gate failed within threshold:\n%s", strings.Join(lines, "\n"))
	}
}

func TestDiffGatedRegressionFails(t *testing.T) {
	results := map[string]float64{
		"Fig3aUniqueContent":   200000000, // 2x slowdown
		"Table1CompletionTime": 200000000,
		"Fig4aHPCCGTimeVsK":    50000000,
	}
	lines, failed := diff(testBaseline(), results)
	if !failed {
		t.Errorf("2x slowdown on gated benchmark did not fail:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "FAIL") || !strings.Contains(joined, "Fig3aUniqueContent") {
		t.Errorf("report does not name the failing benchmark:\n%s", joined)
	}
}

func TestDiffNonGatedRegressionWarnsOnly(t *testing.T) {
	results := map[string]float64{
		"Fig3aUniqueContent":   100000000,
		"Table1CompletionTime": 200000000,
		"Fig4aHPCCGTimeVsK":    500000000, // 10x, but not gated
	}
	lines, failed := diff(testBaseline(), results)
	if failed {
		t.Errorf("non-gated regression failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "warn") {
		t.Errorf("non-gated regression did not warn:\n%s", strings.Join(lines, "\n"))
	}
}

func TestDiffMissingGatedBenchmarkFails(t *testing.T) {
	results := map[string]float64{
		"Table1CompletionTime": 200000000,
	}
	_, failed := diff(testBaseline(), results)
	if !failed {
		t.Error("missing gated benchmark did not fail the gate")
	}
}

func TestDiffNewBenchmarkReported(t *testing.T) {
	results := map[string]float64{
		"Fig3aUniqueContent":   100000000,
		"Table1CompletionTime": 200000000,
		"BrandNew":             1,
	}
	lines, failed := diff(testBaseline(), results)
	if failed {
		t.Errorf("new benchmark failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "NEW") {
		t.Errorf("new benchmark not flagged:\n%s", strings.Join(lines, "\n"))
	}
}

func TestRunUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	raw, err := json.Marshal(testBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(path, true, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	updated, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(updated, &b); err != nil {
		t.Fatal(err)
	}
	if b.Threshold != 0.15 || len(b.Gate) != 2 {
		t.Errorf("update clobbered threshold/gate: %+v", b)
	}
	if b.NsPerOp["Fig4aHPCCGTimeVsK"] != 50000000 {
		t.Errorf("update did not record measured values: %+v", b.NsPerOp)
	}
}

func TestRunEndToEndGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := testBaseline()
	base.NsPerOp["Fig3aUniqueContent"] = 10000000 // results are 10x over this
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = run(path, false, strings.NewReader(sampleOutput), &out)
	if err == nil {
		t.Fatalf("10x regression passed the gate:\n%s", out.String())
	}
}

func TestRunEmptyInputErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	raw, _ := json.Marshal(testBaseline())
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(path, false, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Error("empty benchmark input did not error")
	}
}
