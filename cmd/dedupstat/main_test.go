package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestDedupstatSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dedupstat")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	// Two files sharing half their content.
	shared := bytes.Repeat([]byte("SHARED-BLOCK-CONTENT!"), 1000)
	a := append(append([]byte{}, shared...), bytes.Repeat([]byte("a"), 8192)...)
	b := append(append([]byte{}, shared...), bytes.Repeat([]byte("b"), 8192)...)
	fa := filepath.Join(dir, "a.bin")
	fb := filepath.Join(dir, "b.bin")
	if err := os.WriteFile(fa, a, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fb, b, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-chunk", "512", fa, fb).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"local-unique", "global-unique", "histogram",
		"phase timing:", "chunking", "fingerprint", "local-dedup"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Content-defined mode must also work.
	if out, err := exec.Command(bin, "-cdc", "-chunk", "512", fa).CombinedOutput(); err != nil {
		t.Fatalf("cdc run: %v\n%s", err, out)
	}
	// Missing file is an error.
	if _, err := exec.Command(bin, filepath.Join(dir, "absent")).CombinedOutput(); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTrunc(t *testing.T) {
	if got := trunc("short", 10); got != "short" {
		t.Errorf("trunc short = %q", got)
	}
	if got := trunc("averyverylongpathindeed", 10); len(got) != 10 || !strings.HasPrefix(got, "...") {
		t.Errorf("trunc long = %q", got)
	}
}
