// Command dedupstat analyzes the chunk-level redundancy of arbitrary
// files — the measurement underlying the paper's premise that HPC
// datasets carry substantial natural duplication.
//
// Usage:
//
//	dedupstat [-chunk 4096] [-chunker fixed|cdc|gear] file...
//	dedupstat -cluster cluster.json
//	dedupstat -bundle DIR
//
// It reports, per file and across all files, the total size, the locally
// unique size (per-file dedup, the paper's local-dedup potential) and the
// globally unique size (cross-file dedup, the coll-dedup potential), plus
// a frequency histogram of duplicate chunks.
//
// With -cluster it instead renders a cluster telemetry JSON file
// (written by `dumpbench -cluster` or `replicad -cluster`) as tables:
// dump reports show per-phase min/median/p95/max across ranks, traffic
// totals, load-imbalance coefficients, clock spread and flagged
// stragglers; restore reports (Kind "restore") add read amplification,
// fetch imbalance and sequential-run locality.
//
// With -bundle it renders a post-mortem failure bundle (written by the
// flight recorder on collective failure, rollback, kill or crash
// recovery; see internal/obs): the failure header, the event timeline
// and the attached snapshot files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"

	// Register the gear chunker so -chunker gear resolves.
	_ "dedupcr/internal/chunk/gear"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/telemetry"
)

func main() {
	chunkSize := flag.Int("chunk", chunk.DefaultSize, "chunk size in bytes (target average for cdc/gear)")
	chunkerName := flag.String("chunker", "", "chunking algorithm: fixed, cdc or gear (default fixed)")
	cdc := flag.Bool("cdc", false, "deprecated: same as -chunker cdc")
	clusterIn := flag.String("cluster", "", "render this cluster telemetry JSON file (dump and/or restore reports) as tables and exit")
	bundleIn := flag.String("bundle", "", "render this post-mortem failure bundle directory (or every bundle-* under it) as a timeline and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dedupstat [-chunk N] [-chunker fixed|cdc|gear] file...\n")
		fmt.Fprintf(os.Stderr, "       dedupstat -cluster cluster.json\n")
		fmt.Fprintf(os.Stderr, "       dedupstat -bundle DIR\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *clusterIn != "" {
		if err := renderCluster(*clusterIn); err != nil {
			fmt.Fprintf(os.Stderr, "dedupstat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *bundleIn != "" {
		if err := renderBundle(*bundleIn); err != nil {
			fmt.Fprintf(os.Stderr, "dedupstat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	algo, err := chunk.ParseAlgo(*chunkerName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dedupstat: %v\n", err)
		os.Exit(2)
	}
	if *cdc {
		// Deprecated alias: -cdc still selects CDC, but combining it with
		// a conflicting -chunker is an error, not a silent preference.
		if algo != chunk.AlgoFixed && algo != chunk.AlgoRabin {
			fmt.Fprintf(os.Stderr, "dedupstat: -cdc (deprecated) conflicts with -chunker %s\n", algo)
			os.Exit(2)
		}
		algo = chunk.AlgoRabin
	}
	chunker, err := chunk.New(chunk.Spec{Algo: algo, Size: *chunkSize})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dedupstat: %v\n", err)
		os.Exit(2)
	}

	globalSize := make(map[fingerprint.FP]int64)
	globalFreq := make(map[fingerprint.FP]int)
	var total, localUnique int64
	// The same phase decomposition the dump pipeline reports: read,
	// boundary scan, hashing, dedup lookup.
	var tRead, tChunk, tHash, tDedup time.Duration

	fmt.Printf("%-40s %12s %12s %8s\n", "file", "size", "unique", "ratio")
	for _, path := range flag.Args() {
		start := time.Now()
		data, err := os.ReadFile(path)
		tRead += time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dedupstat: %v\n", err)
			os.Exit(1)
		}
		start = time.Now()
		cuts := chunker.Cuts(data)
		tChunk += time.Since(start)
		start = time.Now()
		chunks := chunk.FromCuts(data, cuts)
		tHash += time.Since(start)
		seen := make(map[fingerprint.FP]bool)
		var fileUnique int64
		start = time.Now()
		for _, ch := range chunks {
			sz := int64(len(ch.Data))
			total += sz
			if !seen[ch.FP] {
				seen[ch.FP] = true
				fileUnique += sz
			}
			globalFreq[ch.FP]++
			globalSize[ch.FP] = sz
		}
		tDedup += time.Since(start)
		localUnique += fileUnique
		fmt.Printf("%-40s %12s %12s %8s\n", trunc(path, 40),
			metrics.Bytes(int64(len(data))), metrics.Bytes(fileUnique),
			metrics.Pct(fileUnique, int64(len(data))))
	}

	var globalUnique int64
	for fp := range globalFreq {
		globalUnique += globalSize[fp]
	}
	fmt.Printf("\ntotal          %12s\n", metrics.Bytes(total))
	fmt.Printf("local-unique   %12s (%s of total)  — local-dedup potential\n",
		metrics.Bytes(localUnique), metrics.Pct(localUnique, total))
	fmt.Printf("global-unique  %12s (%s of total)  — coll-dedup potential\n",
		metrics.Bytes(globalUnique), metrics.Pct(globalUnique, total))

	// Frequency histogram: how many distinct chunks occur f times.
	hist := make(map[int]int)
	for _, f := range globalFreq {
		hist[f]++
	}
	freqs := make([]int, 0, len(hist))
	for f := range hist {
		freqs = append(freqs, f)
	}
	sort.Ints(freqs)
	fmt.Println("\nduplicate frequency histogram (occurrences -> distinct chunks):")
	for _, f := range freqs {
		fmt.Printf("%8d -> %d\n", f, hist[f])
	}

	// Per-phase timing: where the analysis spent its time, with the same
	// labels the dump pipeline uses.
	tTotal := tRead + tChunk + tHash + tDedup
	fmt.Println("\nphase timing:")
	for _, p := range []struct {
		name string
		d    time.Duration
	}{
		{"read", tRead}, {"chunking", tChunk}, {"fingerprint", tHash},
		{"local-dedup", tDedup}, {"total", tTotal},
	} {
		fmt.Printf("%-12s %10s  %s\n", p.name, metrics.Duration(p.d),
			metrics.Pct(int64(p.d), int64(tTotal)))
	}
}

// renderCluster prints the cluster telemetry table(s) of a cluster JSON
// file: either one report (replicad -cluster) or a map of labelled
// reports (dumpbench -cluster). Map entries may mix dump and restore
// telemetry; the Kind discriminator tells them apart (ClusterDump and
// ClusterRestore share too many field names for blind decoding).
func renderCluster(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if ok, err := renderClusterReport(data); ok || err != nil {
		return err
	}
	var many map[string]json.RawMessage
	if err := json.Unmarshal(data, &many); err != nil || len(many) == 0 {
		return fmt.Errorf("%s holds neither a cluster report nor a label map", path)
	}
	labels := make([]string, 0, len(many))
	for l := range many {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for i, l := range labels {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", l)
		ok, err := renderClusterReport(many[l])
		if err != nil {
			return fmt.Errorf("%s: %w", l, err)
		}
		if !ok {
			return fmt.Errorf("%s: not a cluster report", l)
		}
	}
	return nil
}

// renderClusterReport decodes one JSON cluster report — a ClusterRestore
// when Kind is "restore", a ClusterDump otherwise — and prints its
// table. Returns false when the bytes hold neither.
func renderClusterReport(data []byte) (bool, error) {
	var probe struct {
		Kind  string
		Ranks int
	}
	if err := json.Unmarshal(data, &probe); err != nil || probe.Ranks <= 0 {
		return false, nil
	}
	if probe.Kind == "restore" {
		var cr telemetry.ClusterRestore
		if err := json.Unmarshal(data, &cr); err != nil {
			return false, err
		}
		cr.WriteText(os.Stdout)
		return true, nil
	}
	var cd telemetry.ClusterDump
	if err := json.Unmarshal(data, &cd); err != nil {
		return false, err
	}
	cd.WriteText(os.Stdout)
	return true, nil
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}

// renderBundle renders a post-mortem failure bundle: path may name one
// bundle directory (it holds events.jsonl) or a parent directory, in
// which case every bundle-* underneath is rendered, oldest first.
func renderBundle(path string) error {
	if _, err := os.Stat(filepath.Join(path, "events.jsonl")); err == nil {
		return obs.RenderBundle(os.Stdout, path)
	}
	dirs, err := obs.FindBundles(path)
	if err != nil {
		return err
	}
	if len(dirs) == 0 {
		return fmt.Errorf("%s: not a bundle (no events.jsonl) and no bundle-* directories underneath", path)
	}
	for i, dir := range dirs {
		if i > 0 {
			fmt.Println()
		}
		if err := obs.RenderBundle(os.Stdout, dir); err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
	}
	return nil
}
