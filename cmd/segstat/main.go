// Command segstat drives the segment store through a synthetic
// checkpoint churn workload — repeated dumps with partial overlap,
// retiring old checkpoints as new ones commit — and reports the
// resulting compaction statistics as JSON. CI runs it in the bench job
// and uploads the report as the compaction-stats artifact, so reclaim
// behaviour is visible per commit without digging through test logs.
//
//	segstat -checkpoints 12 -chunks 256 -chunk-size 4096 -overlap 0.5 -o stats.json
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

// report is the JSON document segstat emits: the workload's shape, the
// store's final counters, and the derived ratios the CI gate and humans
// care about.
type report struct {
	Checkpoints int     `json:"checkpoints"`
	ChunksPer   int     `json:"chunks_per_checkpoint"`
	ChunkSize   int     `json:"chunk_size"`
	Overlap     float64 `json:"overlap"`
	Keep        int     `json:"keep"`
	Retain      float64 `json:"retain"`

	Stats        metrics.StoreStats `json:"stats"`
	GarbageRatio float64            `json:"garbage_ratio"`
	ReclaimRatio float64            `json:"reclaim_ratio"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "segstat: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "store directory (default: a fresh temp dir, removed on exit)")
	checkpoints := flag.Int("checkpoints", 12, "checkpoints to dump")
	chunks := flag.Int("chunks", 256, "chunks per checkpoint")
	chunkSize := flag.Int("chunk-size", 4096, "bytes per chunk")
	overlap := flag.Float64("overlap", 0.5, "fraction of each checkpoint's chunks carried over unchanged from the previous one")
	keep := flag.Int("keep", 2, "checkpoints retained; older ones are released (forgotten) as the window advances")
	retain := flag.Float64("retain", 0.1, "fraction of a retired checkpoint's chunks kept alive anyway (models chunks shared outside the window); these force compaction to copy instead of just dropping whole segments")
	segTarget := flag.Int64("segment-target", 64<<10, "segment seal threshold in bytes")
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	flag.Parse()

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "segstat-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// Manual compaction keeps the run deterministic: churn, then compact,
	// then report — no race with a background sweeper.
	st, err := storage.NewSegStore(root, storage.SegConfig{SegmentTarget: *segTarget})
	if err != nil {
		return err
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(1))
	carried := int(float64(*chunks) * *overlap)
	var prev []fingerprint.FP // previous checkpoint's chunk set
	window := make([][]fingerprint.FP, 0, *keep)
	buf := make([]byte, *chunkSize)
	for ck := 0; ck < *checkpoints; ck++ {
		cur := make([]fingerprint.FP, 0, *chunks)
		for i := 0; i < *chunks; i++ {
			if i < carried && i < len(prev) {
				// Carried chunk: same content as last checkpoint, so the
				// put dedups into a refcount bump — the paper's natural
				// inter-checkpoint redundancy.
				fp := prev[i]
				if err := st.PutChunk(fp, nil); err != nil {
					return fmt.Errorf("checkpoint %d dedup put: %w", ck, err)
				}
				cur = append(cur, fp)
				continue
			}
			rng.Read(buf)
			binary.BigEndian.PutUint64(buf, uint64(ck)<<32|uint64(i))
			fp := fingerprint.Of(buf)
			if err := st.PutChunk(fp, buf); err != nil {
				return fmt.Errorf("checkpoint %d put: %w", ck, err)
			}
			cur = append(cur, fp)
		}
		if err := st.Commit(); err != nil {
			return fmt.Errorf("checkpoint %d commit: %w", ck, err)
		}
		prev = cur
		window = append(window, cur)
		if len(window) > *keep {
			oldest := window[0]
			window = window[1:]
			for _, fp := range oldest {
				if rng.Float64() < *retain {
					continue
				}
				if err := st.ReleaseChunk(fp); err != nil {
					return fmt.Errorf("checkpoint %d release: %w", ck, err)
				}
			}
			if err := st.Commit(); err != nil {
				return fmt.Errorf("checkpoint %d release commit: %w", ck, err)
			}
			if _, err := st.Compact(); err != nil {
				return fmt.Errorf("checkpoint %d compact: %w", ck, err)
			}
		}
	}
	// Final sweep so the report reflects a settled store.
	if _, err := st.Compact(); err != nil {
		return fmt.Errorf("final compact: %w", err)
	}

	stats := st.Stats()
	rep := report{
		Checkpoints: *checkpoints, ChunksPer: *chunks, ChunkSize: *chunkSize,
		Overlap: *overlap, Keep: *keep, Retain: *retain,
		Stats:        stats,
		GarbageRatio: stats.GarbageRatio(),
		ReclaimRatio: stats.ReclaimRatio(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("segstat: %d checkpoints, reclaim ratio %.3f, garbage ratio %.3f -> %s\n",
		*checkpoints, rep.ReclaimRatio, rep.GarbageRatio, *out)
	return nil
}
