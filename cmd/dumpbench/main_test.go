package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickSmoke builds dumpbench and runs one quick experiment end to
// end, verifying the table renders.
func TestQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	bin := filepath.Join(t.TempDir(), "dumpbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-quick", "fig3a").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"fig3a", "no-dedup", "coll-dedup", "HPCCG"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig3a", "fig3b", "fig3c", "table1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %q", id)
		}
	}

	if out, err := exec.Command(bin, "nonsense").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}
