package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestQuickSmoke builds dumpbench and runs one quick experiment end to
// end, verifying the table renders.
func TestQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	bin := filepath.Join(t.TempDir(), "dumpbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-quick", "fig3a").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"fig3a", "no-dedup", "coll-dedup", "HPCCG"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	out, err = exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig3a", "fig3b", "fig3c", "table1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %q", id)
		}
	}

	if out, err := exec.Command(bin, "nonsense").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}

// TestTraceOutput runs the phases experiment with -trace and verifies
// the file is valid Chrome trace-event JSON whose spans cover the dump
// pipeline.
func TestTraceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dumpbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	traceFile := filepath.Join(dir, "out.json")
	out, err := exec.Command(bin, "-quick", "-trace", traceFile, "phases").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"chunking", "window-wait", "sum of phases", "measured total", "wrote"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	seen := make(map[string]bool)
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			seen[e.Name] = true
			if e.Dur < 0 {
				t.Errorf("negative duration on %q", e.Name)
			}
		}
	}
	for _, want := range []string{"compute", "dump", "chunking", "fingerprint", "put", "window-wait", "commit"} {
		if !seen[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
}
