// Command dumpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dumpbench -list
//	dumpbench [-quick] [-v] fig3a table1 ...
//	dumpbench [-quick] [-v] all
//
// Each experiment prints the same rows/series the paper reports; -quick
// shrinks process counts for a fast smoke run, the default uses the
// paper's scales (up to 408 ranks, simulated in process).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dedupcr/internal/experiments"
	"dedupcr/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	quick := flag.Bool("quick", false, "shrink process counts for a fast run")
	verbose := flag.Bool("v", false, "print scenario progress to stderr")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of every scenario to this file (open in Perfetto)")
	parallelism := flag.Int("parallelism", 0, "per-rank worker budget for the dump hot path (0 = GOMAXPROCS, 1 = serial reference)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dumpbench [-quick] [-v] [-parallelism n] [-trace out.json] <experiment-id>... | all\n")
		fmt.Fprintf(os.Stderr, "       dumpbench -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	cfg := experiments.Config{Quick: *quick, Verbose: *verbose, Parallelism: *parallelism}
	if *traceOut != "" {
		cfg.Trace = trace.New()
	}
	for _, id := range ids {
		exp, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dumpbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (coverage %.1f%% of traced wall time)\n",
			len(cfg.Trace.Events()), *traceOut, 100*cfg.Trace.Coverage())
	}
}
