// Command dumpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dumpbench -list
//	dumpbench [-quick] [-v] fig3a table1 ...
//	dumpbench [-quick] [-v] all
//
// Each experiment prints the same rows/series the paper reports; -quick
// shrinks process counts for a fast smoke run, the default uses the
// paper's scales (up to 408 ranks, simulated in process).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dedupcr/internal/chunk"
	"dedupcr/internal/experiments"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"

	// Register the gear chunker so -chunker gear resolves.
	_ "dedupcr/internal/chunk/gear"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	quick := flag.Bool("quick", false, "shrink process counts for a fast run")
	verbose := flag.Bool("v", false, "print scenario progress to stderr")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of every scenario to this file (open in Perfetto)")
	clusterOut := flag.String("cluster", "", "write the ClusterDump/ClusterRestore JSON of every telemetry-aggregating scenario to this file (keyed by scenario label)")
	clusterTrace := flag.String("cluster-trace", "", "write a merged cross-rank Chrome trace (one pid per rank) of the last telemetry-aggregating scenario to this file")
	restoreStats := flag.Bool("restore-stats", false, "print the cluster restore telemetry report of every restore-aggregating scenario (read amplification, locality, stragglers)")
	parallelism := flag.Int("parallelism", 0, "per-rank worker budget for the dump hot path (0 = GOMAXPROCS, 1 = serial reference)")
	chunker := flag.String("chunker", "fixed", "chunking algorithm for every dump: fixed, cdc or gear")
	timeout := flag.Duration("timeout", 0, "abort each collective scenario after this long (0 = no deadline)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dumpbench [-quick] [-v] [-parallelism n] [-chunker fixed|cdc|gear] [-trace out.json] [-cluster out.json] [-cluster-trace out.json] [-restore-stats] <experiment-id>... | all\n")
		fmt.Fprintf(os.Stderr, "       dumpbench -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	algo, err := chunk.ParseAlgo(*chunker)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dumpbench: %v\n", err)
		os.Exit(2)
	}

	cfg := experiments.Config{Quick: *quick, Verbose: *verbose, Parallelism: *parallelism, Chunker: algo, Timeout: *timeout}
	if *traceOut != "" {
		cfg.Trace = trace.New()
	}
	// Collect every ClusterDump/ClusterRestore the experiments aggregate;
	// files are written once after all experiments ran. The JSON map mixes
	// both kinds — the Kind field disambiguates them for dedupstat.
	clusters := map[string]any{}
	var lastLabel string
	var lastRanks []telemetry.RankTrace
	var lastCluster *telemetry.ClusterDump
	if *clusterOut != "" || *clusterTrace != "" {
		cfg.OnCluster = func(label string, cd *telemetry.ClusterDump, ranks []telemetry.RankTrace) {
			clusters[label] = cd
			lastLabel, lastCluster, lastRanks = label, cd, ranks
		}
	}
	if *clusterOut != "" || *restoreStats {
		cfg.OnClusterRestore = func(label string, cr *telemetry.ClusterRestore, ranks []telemetry.RankTrace) {
			clusters[label] = cr
			if *restoreStats {
				fmt.Printf("== restore telemetry: %s ==\n", label)
				cr.WriteText(os.Stdout)
				fmt.Println()
			}
		}
	}
	for _, id := range ids {
		exp, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dumpbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.WriteFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (coverage %.1f%% of traced wall time)\n",
			len(cfg.Trace.Events()), *traceOut, 100*cfg.Trace.Coverage())
	}
	if *clusterOut != "" {
		if len(clusters) == 0 {
			fmt.Fprintf(os.Stderr, "dumpbench: -cluster set but no experiment aggregated cluster telemetry (run imbalance or fragmentation)\n")
			os.Exit(1)
		}
		data, err := json.MarshalIndent(clusters, "", "  ")
		if err == nil {
			err = os.WriteFile(*clusterOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: write cluster dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d cluster reports to %s\n", len(clusters), *clusterOut)
	}
	if *clusterTrace != "" {
		if lastRanks == nil {
			fmt.Fprintf(os.Stderr, "dumpbench: -cluster-trace set but no experiment aggregated cluster telemetry (run imbalance)\n")
			os.Exit(1)
		}
		f, err := os.Create(*clusterTrace)
		if err == nil {
			err = telemetry.MergeTraces(f, lastRanks, lastCluster)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dumpbench: write merged trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote merged cross-rank trace of %s to %s\n", lastLabel, *clusterTrace)
	}
}
